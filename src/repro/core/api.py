"""The high-level PerfXplain facade and batch session.

This is the entry point most users need: load (or build) an execution log,
wrap it in :class:`PerfXplain`, and ask questions either as PXQL text or as
:class:`~repro.core.pxql.query.PXQLQuery` objects.

.. code-block:: python

    from repro import PerfXplain
    from repro.workloads import small_grid, build_experiment_log

    log = build_experiment_log(small_grid(), seed=7)
    px = PerfXplain(log)
    explanation = px.explain('''
        FOR JOBS 'job_202606140001_0003', 'job_202606140001_0010'
        DESPITE numinstances_isSame = T AND pig_script_isSame = T
        OBSERVED duration_compare = GT
        EXPECTED duration_compare = SIM
    ''')
    print(explanation.format())

Techniques are resolved through the pluggable registry
(:mod:`repro.core.registry`): anything registered with
``@register_explainer`` is immediately usable as the ``technique=``
argument.  For answering *many* queries against one log, use
:class:`PerfXplainSession` — it shares schema inference, pair selection and
training-example construction across calls, and offers
:meth:`PerfXplainSession.explain_batch`.
"""

from __future__ import annotations

import random
import threading
import time

from repro.core.cache import CacheStats, LRUCache
from repro.core.locks import SingleFlight
from repro.core.examples import (
    TrainingExample,
    TrainingMatrix,
    construct_training_matrix,
    find_record,
    records_for_query,
)
from repro.core.explanation import Explanation
from repro.core.explainer import PerfXplainConfig, PerfXplainExplainer
from repro.core.features import FeatureSchema, infer_schema
from repro.core.pairs import compute_pair_features
from repro.core.pxql import BoundQuery, PXQLQuery, Predicate, parse_query
from repro.core.queries import find_pair_of_interest
from repro.core.registry import (
    Explainer,
    call_explainer,
    create_explainer,
    explainer_accepts_examples,
    explainer_seed_offset,
    registered_explainers,
)
from repro.core.report import Report, ReportEntry
from repro.exceptions import ExplanationError, ReproError
from repro.logs.records import FeatureValue
from repro.logs.store import ExecutionLog

#: Default bound on each session cache (entries, not bytes).  Generous —
#: a service answering a realistic query mix rarely sees this many distinct
#: clause signatures or pairs — but finite, so a long-lived session cannot
#: grow without limit.  Pass ``cache_capacity=None`` for the old unbounded
#: behaviour.
DEFAULT_CACHE_CAPACITY = 1024


class PerfXplain:
    """Answer comparative performance questions over an execution log."""

    def __init__(
        self,
        log: ExecutionLog,
        config: PerfXplainConfig | None = None,
        seed: int = 0,
    ) -> None:
        """
        :param log: the log of past job and task executions.
        :param config: explanation-generation configuration.
        :param seed: seed for the internal random generators (sampling).
        """
        self.log = log
        self.config = config if config is not None else PerfXplainConfig()
        self._seed = seed
        self._schemas: dict[str, FeatureSchema] = {}
        self._technique_instances: dict[str, Explainer] = {}
        #: Guards lazy creation of schemas, technique instances and the
        #: per-technique call locks under concurrent readers.
        self._facade_lock = threading.Lock()
        #: One lock per technique instance: stateful techniques (e.g.
        #: RuleOfThumb's importance cache and its rng) must see calls one
        #: at a time to stay deterministic; see :meth:`explain`.
        self._technique_locks: dict[str, threading.Lock] = {}

    # ------------------------------------------------------------------ #
    # queries and explanations
    # ------------------------------------------------------------------ #

    def parse(self, text: str) -> PXQLQuery:
        """Parse a PXQL query string."""
        return parse_query(text)

    def explain(
        self,
        query: str | PXQLQuery,
        width: int | None = None,
        technique: str = "perfxplain",
        auto_despite: bool = False,
    ) -> Explanation:
        """Generate an explanation for a PXQL query.

        :param query: PXQL text or a query object.  If the pair identifiers
            are left unspecified, a representative pair of interest is picked
            from the log automatically.
        :param width: explanation width (defaults to the configured width).
        :param technique: any registered technique name — ``"perfxplain"``
            (default), ``"ruleofthumb"``, ``"simbutdiff"``, or a custom one
            registered via
            :func:`~repro.core.registry.register_explainer`.
        :param auto_despite: let the technique extend the despite clause
            before generating the because clause (techniques that do not
            declare the keyword reject the request).
        """
        resolved = self.resolve(query)
        schema = self.schema_for(resolved)
        explainer = self.technique(technique)
        # Build the shared training examples *before* taking the technique
        # lock: matrix construction is the expensive, parallel-friendly
        # work (single-flighted per clause signature in the session), while
        # the dispatch below is serialised per technique instance so
        # stateful explainers see calls one at a time.
        examples = (
            self._examples_for(resolved)
            if explainer_accepts_examples(explainer)
            else None
        )
        with self._technique_lock(technique):
            return call_explainer(
                explainer,
                self.log,
                resolved,
                schema=schema,
                width=width,
                auto_despite=auto_despite,
                examples=examples,
            )

    def suggest_despite(self, query: str | PXQLQuery, width: int | None = None) -> Predicate:
        """Generate a ``des'`` clause for an under-specified query."""
        resolved = self.resolve(query)
        schema = self.schema_for(resolved)
        explainer = self.technique("perfxplain")
        if not isinstance(explainer, PerfXplainExplainer):
            raise ExplanationError(
                "despite-clause suggestion requires the PerfXplain technique"
            )
        examples = self._examples_for(resolved)
        with self._technique_lock("perfxplain"):
            return explainer.generate_despite(
                self.log, resolved, schema=schema, width=width,
                examples=examples,
            )

    def pair_features(self, query: str | PXQLQuery) -> dict[str, FeatureValue]:
        """The full pair-feature vector of a query's pair of interest."""
        resolved = self.resolve(query)
        schema = self.schema_for(resolved)
        first = find_record(self.log, resolved, resolved.first_id)
        second = find_record(self.log, resolved, resolved.second_id)
        return compute_pair_features(first, second, schema, self.config.pair_config)

    def find_pair(self, query: str | PXQLQuery) -> tuple[str, str]:
        """Pick a pair of executions matching a query's despite/observed clauses."""
        query = query if isinstance(query, PXQLQuery) else self.parse(query)
        schema = self.schema_for(query)
        return find_pair_of_interest(
            self.log, query, schema=schema, config=self.config.pair_config,
            rng=random.Random(self._seed),
        )

    def resolve(self, query: str | PXQLQuery) -> BoundQuery:
        """Parse and bind a query to a concrete pair of interest.

        Text queries are parsed first; queries without pair identifiers get
        a representative pair picked from the log.  The result's identifiers
        are guaranteed non-``None``.
        """
        if isinstance(query, str):
            query = self.parse(query)
        if not query.has_pair:
            first_id, second_id = self.find_pair(query)
            return query.with_pair(first_id, second_id)
        return query.bound()

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    def schema_for(self, query: PXQLQuery) -> FeatureSchema:
        """The raw-feature schema for the query's entity kind (cached).

        Double-checked under the facade lock: concurrent readers racing a
        cold kind infer the schema once.
        """
        key = query.entity.value
        schema = self._schemas.get(key)
        if schema is not None:
            return schema
        with self._facade_lock:
            schema = self._schemas.get(key)
            if schema is not None:
                return schema
            records = records_for_query(self.log, query)
            if not records:
                raise ExplanationError(
                    f"the log contains no {key} records; cannot answer {key}-level queries"
                )
            schema = infer_schema(records)
            self._schemas[key] = schema
            return schema

    def technique(self, name: str) -> Explainer:
        """The (lazily instantiated) explainer behind a technique name.

        Instances are cached per facade; each technique's random generator
        is derived deterministically from the facade seed and the technique
        name, so adding or removing registrations never perturbs another
        technique's output.  Creation is double-checked under the facade
        lock, so racing readers share one instance (and one rng).
        """
        key = name.lower()
        instance = self._technique_instances.get(key)
        if instance is not None:
            return instance
        with self._facade_lock:
            instance = self._technique_instances.get(key)
            if instance is None:
                rng = random.Random(self._seed + explainer_seed_offset(key))
                instance = create_explainer(key, config=self.config, rng=rng)
                self._technique_instances[key] = instance
            return instance

    def _technique_lock(self, name: str) -> threading.Lock:
        """The per-technique dispatch lock (created on first use)."""
        key = name.lower()
        lock = self._technique_locks.get(key)
        if lock is None:
            with self._facade_lock:
                lock = self._technique_locks.setdefault(key, threading.Lock())
        return lock

    def techniques(self) -> dict[str, Explainer]:
        """Every registered technique, instantiated, keyed by public name."""
        return {name: self.technique(name) for name in registered_explainers()}

    def _examples_for(self, query: BoundQuery) -> "list[TrainingExample] | TrainingMatrix | None":
        """Precomputed training examples for a resolved query.

        The plain facade computes nothing ahead of time (each technique
        builds its own examples); :class:`PerfXplainSession` overrides this
        with a shared per-clause-signature cache of encoded
        :class:`~repro.core.examples.TrainingMatrix` objects.
        """
        return None

class PerfXplainSession(PerfXplain):
    """A PerfXplain facade optimised for answering many queries on one log.

    Queries against the same log repeat the same expensive intermediate
    work: inferring the feature schema, enumerating the related pairs of
    Definition 7, encoding their pair-feature vectors, and building the
    columnar :class:`~repro.core.examples.TrainingMatrix` (including one
    global sort per numeric pair-feature column) the clause-growing loop
    searches.  The session caches that work keyed by the query's *clause
    signature* — the (entity, despite, observed, expected) quadruple —
    which is what the training examples actually depend on (not the pair
    of interest), so N queries with shared clauses pay for one
    construction and one encoding.

    All caching is deterministic: the session derives every random
    generator from its seed, so a session answers a fixed query list
    identically across runs.  Each cache is a bounded
    :class:`~repro.core.cache.LRUCache` (``cache_capacity`` entries,
    ``None`` = unlimited); eviction only ever costs recomputation, never
    correctness, and :meth:`cache_stats` reports the running
    hit/miss/eviction counters per cache.

    The session tracks the log's per-kind mutation state
    (:meth:`~repro.logs.store.ExecutionLog.mutation_snapshot`) as a
    high-water mark.  When records are *appended* (live, growing logs),
    only the cache entries whose clause signature touches the grown
    record kind are discarded — a task append leaves every job-level
    explanation, matrix, pair and schema untouched.  In-place
    replacement or an explicit
    :meth:`~repro.logs.store.ExecutionLog.invalidate_caches` moves the
    epoch instead, which drops everything: history changed, so nothing
    derived from it can be trusted.

    The session is safe under **concurrent readers**: the caches are
    individually locked (:class:`~repro.core.cache.LRUCache`), cold-key
    computations are collapsed per key
    (:class:`~repro.core.locks.SingleFlight` — two threads racing the
    same cold clause signature produce one encode), technique dispatch is
    serialised per instance so stateful explainers stay deterministic,
    and cache/mutation reconciliation runs under a sync lock.  Mutating
    the *log* concurrently with readers is not safe at this layer — the
    service catalog's per-log reader-writer lock excludes appends from
    reads (see ``docs/concurrency.md``).
    """

    def __init__(
        self,
        log: ExecutionLog,
        config: PerfXplainConfig | None = None,
        seed: int = 0,
        cache_capacity: int | None = DEFAULT_CACHE_CAPACITY,
    ) -> None:
        super().__init__(log, config=config, seed=seed)
        self._matrix_cache = LRUCache(cache_capacity)
        self._pair_cache = LRUCache(cache_capacity)
        self._pair_feature_cache = LRUCache(cache_capacity)
        self._explanation_cache = LRUCache(cache_capacity)
        self._log_snapshot = log.mutation_snapshot()
        self._append_invalidations = 0
        self._full_invalidations = 0
        #: Compute-once-per-key across every session cache: two readers
        #: racing the same cold clause signature produce one encode — the
        #: loser blocks and shares the leader's result.  Keys are
        #: namespaced per cache kind.
        self._flight = SingleFlight()
        #: Serialises cache reconciliation against log mutation state, so
        #: an append is folded into the caches by exactly one reader.
        self._sync_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # batch answering
    # ------------------------------------------------------------------ #

    def explain(
        self,
        query: str | PXQLQuery,
        width: int | None = None,
        technique: str = "perfxplain",
        auto_despite: bool = False,
    ) -> Explanation:
        """Generate (or reuse) an explanation for a PXQL query.

        On top of the facade behaviour, the session memoises whole
        explanations: against one immutable log, an explanation is a pure
        function of the resolved query (clause signature plus pair of
        interest), the width, the technique and the ``auto_despite`` flag,
        so repeated identical questions — the common case for a service
        answering heavy query traffic — cost one dictionary probe.  The
        session therefore answers repeats of the same question
        *idempotently*; a custom registered technique that deliberately
        randomises repeated answers should be called through the plain
        :class:`PerfXplain` facade instead.
        """
        resolved = self.resolve(query)
        key = (
            self._clause_signature(resolved),
            resolved.first_id,
            resolved.second_id,
            width,
            technique.lower(),
            auto_despite,
        )
        explanation = self._explanation_cache.get(key)
        if explanation is None:
            parent = super()

            def build() -> Explanation:
                built = parent.explain(
                    resolved, width=width, technique=technique,
                    auto_despite=auto_despite,
                )
                self._explanation_cache.put(key, built)
                return built

            explanation = self._flight.do(("explanation", key), build)
        return explanation

    def explain_batch(
        self,
        queries: list[str | PXQLQuery] | tuple[str | PXQLQuery, ...],
        width: int | None = None,
        technique: str = "perfxplain",
        auto_despite: bool = False,
        collect_errors: bool = True,
    ) -> Report:
        """Answer many queries and collect the results in a :class:`Report`.

        :param queries: PXQL texts and/or query objects, in answer order.
        :param width: explanation width applied to every query.
        :param technique: registered technique name applied to every query.
        :param auto_despite: forwarded to every :meth:`explain` call.
        :param collect_errors: record failing queries as error entries in
            the report instead of raising on the first failure.
        """
        report = Report()
        for query in queries:
            start = time.perf_counter()
            try:
                resolved = self.resolve(query)
                explanation = self.explain(
                    resolved, width=width, technique=technique,
                    auto_despite=auto_despite,
                )
                elapsed_ms = (time.perf_counter() - start) * 1000.0
                report.add(
                    ReportEntry.for_query(resolved, explanation, elapsed_ms=elapsed_ms)
                )
            except ReproError as error:
                if not collect_errors:
                    raise
                text = query if isinstance(query, str) else str(query)
                report.add(ReportEntry(query=text.strip(), error=str(error)))
        return report

    # ------------------------------------------------------------------ #
    # shared-state caches
    # ------------------------------------------------------------------ #

    def training_examples(self, query: str | PXQLQuery) -> list[TrainingExample]:
        """The (cached) training examples for a query's clause signature.

        A view on the matrix cache: the encoded
        :class:`~repro.core.examples.TrainingMatrix` owns the example list,
        so there is exactly one cache to keep coherent.
        """
        return self.training_matrix(query).examples

    def training_matrix(self, query: str | PXQLQuery) -> TrainingMatrix:
        """The (cached) columnar encoding of a query's training examples.

        Built end-to-end on the columnar pipeline
        (:func:`~repro.core.examples.construct_training_matrix`): the log's
        :class:`~repro.logs.store.RecordBlock` is encoded once per log and
        shared across every clause signature, the kernels filter the
        candidate pairs, and the matrix is assembled straight from the
        kernel output columns.  Keyed by the clause signature — the
        (entity, despite, observed, expected) quadruple the examples
        actually depend on — so N queries sharing clauses pay for one
        construction and one global sort per numeric pair-feature column.
        Entries for a record kind are discarded when the log grows (or
        changes) that kind; see the class docstring.
        """
        resolved = self.resolve(query)
        key = self._clause_signature(resolved)
        matrix = self._matrix_cache.get(key)
        if matrix is None:

            def build() -> TrainingMatrix:
                built = construct_training_matrix(
                    self.log,
                    resolved,
                    self.schema_for(resolved),
                    config=self.config.pair_config,
                    sample_size=self.config.sample_size,
                    rng=random.Random(self._seed),
                    feature_level=self.config.feature_level,
                    workers=self.config.pair_workers,
                )
                self._matrix_cache.put(key, built)
                return built

            matrix = self._flight.do(("matrix", key), build)
        return matrix

    def resolve(self, query: str | PXQLQuery) -> BoundQuery:
        """Parse and bind a query, syncing caches with the log first."""
        self._sync_with_log()
        return super().resolve(query)

    def find_pair(self, query: str | PXQLQuery) -> tuple[str, str]:
        """Pick a pair of executions for a query (cached per clause signature)."""
        self._sync_with_log()
        query = query if isinstance(query, PXQLQuery) else self.parse(query)
        key = self._clause_signature(query)
        pair = self._pair_cache.get(key)
        if pair is None:
            parent = super()
            resolved_query = query

            def build() -> tuple[str, str]:
                built = parent.find_pair(resolved_query)
                self._pair_cache.put(key, built)
                return built

            pair = self._flight.do(("pair", key), build)
        return pair

    def pair_features(self, query: str | PXQLQuery) -> dict[str, FeatureValue]:
        """The pair-feature vector of a query's pair (cached per pair)."""
        resolved = self.resolve(query)
        key = (resolved.entity.value, resolved.first_id, resolved.second_id)
        features = self._pair_feature_cache.get(key)
        if features is None:
            parent = super()

            def build() -> dict[str, FeatureValue]:
                built = parent.pair_features(resolved)
                self._pair_feature_cache.put(key, built)
                return built

            features = self._flight.do(("pair_features", key), build)
        return features

    def cache_stats(self) -> dict[str, CacheStats]:
        """Hit/miss/eviction counters for every session cache, by name.

        ``record_blocks`` reports the log's own bounded per-``(kind,
        schema)`` block cache (:meth:`~repro.logs.store.ExecutionLog.block_cache_stats`),
        surfaced here so catalog introspection sees every cache a query
        touches through one interface.
        """
        return {
            "explanations": self._explanation_cache.stats(),
            "matrices": self._matrix_cache.stats(),
            "pairs": self._pair_cache.stats(),
            "pair_features": self._pair_feature_cache.stats(),
            "record_blocks": CacheStats(**self.log.block_cache_stats()),
        }

    def _examples_for(self, query: BoundQuery) -> "list[TrainingExample] | TrainingMatrix | None":
        return self.training_matrix(query)

    # ------------------------------------------------------------------ #
    # log-growth tracking
    # ------------------------------------------------------------------ #

    def _sync_with_log(self) -> None:
        """Reconcile the caches with the log's current mutation state.

        Called on every query entry point.  Append-only growth of a kind
        (same epoch, higher version/count) discards only that kind's
        entries; an epoch move means history was rewritten and drops
        everything.  O(1) when nothing changed — the common case; the
        lock-free fast path makes the hot read path pay one dict compare.
        When the snapshot did move, reconciliation runs under the sync
        lock: exactly one reader folds the mutation in, and late racers
        re-check and return.
        """
        snapshot = self.log.mutation_snapshot()
        if snapshot == self._log_snapshot:
            return
        with self._sync_lock:
            snapshot = self.log.mutation_snapshot()
            if snapshot == self._log_snapshot:
                return
            for kind in ("job", "task"):
                new = snapshot[kind]
                old = self._log_snapshot[kind]
                if new == old:
                    continue
                if new[0] != old[0]:
                    self._invalidate_all()
                    self._log_snapshot = snapshot
                    return
                self._invalidate_kind(kind)
            self._log_snapshot = snapshot

    def _invalidate_kind(self, kind: str) -> None:
        """Discard everything derived from one record kind's contents."""
        self._schemas.pop(kind, None)
        self._matrix_cache.discard_if(lambda key: key[0] == kind)
        self._pair_cache.discard_if(lambda key: key[0] == kind)
        self._pair_feature_cache.discard_if(lambda key: key[0] == kind)
        self._explanation_cache.discard_if(lambda key: key[0][0] == kind)
        self._append_invalidations += 1

    def _invalidate_all(self) -> None:
        """Discard every cached derivation (the log's history changed)."""
        self._schemas.clear()
        self._matrix_cache.clear()
        self._pair_cache.clear()
        self._pair_feature_cache.clear()
        self._explanation_cache.clear()
        self._full_invalidations += 1

    def invalidation_stats(self) -> dict[str, int]:
        """Running counters for cache-sync events against a mutating log."""
        return {
            "append_invalidations": self._append_invalidations,
            "full_invalidations": self._full_invalidations,
        }

    def concurrency_stats(self) -> dict[str, int]:
        """Single-flight dedup counters for the session's shared caches.

        ``leads`` counts computations actually run, ``waits`` counts
        concurrent callers that piggybacked on a leader's in-flight
        computation instead of redoing it (the session-level analogue of
        the service's request dedup), ``in_flight`` is the current number
        of cold keys being computed.
        """
        return self._flight.stats()

    @staticmethod
    def _clause_signature(query: PXQLQuery) -> tuple:
        """What the training examples depend on: entity + the three clauses.

        The key is structural (feature, operator, value, value type), not
        ``str()``-rendered: rendering would alias predicates that compare
        against ``2`` and ``"2"``, whose evaluation semantics differ.
        """
        def atoms(predicate: Predicate) -> tuple:
            return tuple(
                (atom.feature, atom.operator.value, atom.value,
                 type(atom.value).__name__)
                for atom in predicate.atoms
            )

        return (
            query.entity.value,
            atoms(query.despite),
            atoms(query.observed),
            atoms(query.expected),
        )
