"""The high-level PerfXplain facade.

This is the entry point most users need: load (or build) an execution log,
wrap it in :class:`PerfXplain`, and ask questions either as PXQL text or as
:class:`~repro.core.pxql.query.PXQLQuery` objects.

.. code-block:: python

    from repro import PerfXplain
    from repro.workloads import small_grid, build_experiment_log

    log = build_experiment_log(small_grid(), seed=7)
    px = PerfXplain(log)
    explanation = px.explain('''
        FOR JOBS 'job_202606140001_0003', 'job_202606140001_0010'
        DESPITE numinstances_isSame = T AND pig_script_isSame = T
        OBSERVED duration_compare = GT
        EXPECTED duration_compare = SIM
    ''')
    print(explanation.format())
"""

from __future__ import annotations

import random

from repro.core.baselines import RuleOfThumbExplainer, SimButDiffExplainer
from repro.core.examples import find_record, records_for_query
from repro.core.explanation import Explanation
from repro.core.explainer import PerfXplainConfig, PerfXplainExplainer
from repro.core.features import FeatureLevel, FeatureSchema, infer_schema
from repro.core.pairs import PairFeatureConfig, compute_pair_features
from repro.core.pxql import PXQLQuery, Predicate, parse_query
from repro.core.queries import find_pair_of_interest
from repro.exceptions import ExplanationError
from repro.logs.records import FeatureValue
from repro.logs.store import ExecutionLog

#: Names accepted by :meth:`PerfXplain.explain`'s ``technique`` argument.
TECHNIQUE_NAMES = ("perfxplain", "ruleofthumb", "simbutdiff")


class PerfXplain:
    """Answer comparative performance questions over an execution log."""

    def __init__(
        self,
        log: ExecutionLog,
        config: PerfXplainConfig | None = None,
        seed: int = 0,
    ) -> None:
        """
        :param log: the log of past job and task executions.
        :param config: explanation-generation configuration.
        :param seed: seed for the internal random generators (sampling).
        """
        self.log = log
        self.config = config if config is not None else PerfXplainConfig()
        self._seed = seed
        self._schemas: dict[str, FeatureSchema] = {}
        self._explainer = PerfXplainExplainer(self.config, rng=random.Random(seed))
        self._rule_of_thumb = RuleOfThumbExplainer(
            pair_config=self.config.pair_config, rng=random.Random(seed + 1)
        )
        self._sim_but_diff = SimButDiffExplainer(
            pair_config=self.config.pair_config, rng=random.Random(seed + 2)
        )

    # ------------------------------------------------------------------ #
    # queries and explanations
    # ------------------------------------------------------------------ #

    def parse(self, text: str) -> PXQLQuery:
        """Parse a PXQL query string."""
        return parse_query(text)

    def explain(
        self,
        query: str | PXQLQuery,
        width: int | None = None,
        technique: str = "perfxplain",
        auto_despite: bool = False,
    ) -> Explanation:
        """Generate an explanation for a PXQL query.

        :param query: PXQL text or a query object.  If the pair identifiers
            are left unspecified, a representative pair of interest is picked
            from the log automatically.
        :param width: explanation width (defaults to the configured width).
        :param technique: ``"perfxplain"`` (default), ``"ruleofthumb"`` or
            ``"simbutdiff"``.
        :param auto_despite: let PerfXplain extend the despite clause before
            generating the because clause (only supported by PerfXplain).
        """
        query = self._resolve_query(query)
        schema = self.schema_for(query)
        technique_key = technique.lower()
        if technique_key == "perfxplain":
            return self._explainer.explain(
                self.log, query, schema=schema, width=width, auto_despite=auto_despite
            )
        if technique_key == "ruleofthumb":
            return self._rule_of_thumb.explain(self.log, query, schema=schema, width=width)
        if technique_key == "simbutdiff":
            return self._sim_but_diff.explain(self.log, query, schema=schema, width=width)
        raise ExplanationError(
            f"unknown technique {technique!r}; expected one of {TECHNIQUE_NAMES}"
        )

    def suggest_despite(self, query: str | PXQLQuery, width: int | None = None) -> Predicate:
        """Generate a ``des'`` clause for an under-specified query."""
        query = self._resolve_query(query)
        schema = self.schema_for(query)
        return self._explainer.generate_despite(self.log, query, schema=schema, width=width)

    def pair_features(self, query: str | PXQLQuery) -> dict[str, FeatureValue]:
        """The full pair-feature vector of a query's pair of interest."""
        query = self._resolve_query(query)
        schema = self.schema_for(query)
        first = find_record(self.log, query, query.first_id)  # type: ignore[arg-type]
        second = find_record(self.log, query, query.second_id)  # type: ignore[arg-type]
        return compute_pair_features(first, second, schema, self.config.pair_config)

    def find_pair(self, query: str | PXQLQuery) -> tuple[str, str]:
        """Pick a pair of executions matching a query's despite/observed clauses."""
        query = query if isinstance(query, PXQLQuery) else self.parse(query)
        schema = self.schema_for(query)
        return find_pair_of_interest(
            self.log, query, schema=schema, config=self.config.pair_config,
            rng=random.Random(self._seed),
        )

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    def schema_for(self, query: PXQLQuery) -> FeatureSchema:
        """The raw-feature schema for the query's entity kind (cached)."""
        key = query.entity.value
        if key not in self._schemas:
            records = records_for_query(self.log, query)
            if not records:
                raise ExplanationError(
                    f"the log contains no {key} records; cannot answer {key}-level queries"
                )
            self._schemas[key] = infer_schema(records)
        return self._schemas[key]

    def techniques(self) -> dict[str, object]:
        """The underlying technique objects, keyed by their public names."""
        return {
            "perfxplain": self._explainer,
            "ruleofthumb": self._rule_of_thumb,
            "simbutdiff": self._sim_but_diff,
        }

    def _resolve_query(self, query: str | PXQLQuery) -> PXQLQuery:
        if isinstance(query, str):
            query = self.parse(query)
        if not query.has_pair:
            first_id, second_id = self.find_pair(query)
            query = query.with_pair(first_id, second_id)
        return query
