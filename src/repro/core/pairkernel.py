"""Vectorized pair-feature kernels over a :class:`~repro.logs.store.RecordBlock`.

Layer 2 of the columnar pair pipeline.  The paper's Section 4 derives, for
every candidate pair of executions, the Table-1 pair features
(``_isSame`` / ``_compare`` / ``_diff`` / shared base value) and filters the
candidates through the query's despite/observed/expected clauses.  The dict
reference path (:mod:`repro.core.pairref`) does that one pair at a time,
allocating a feature dict per candidate; this module does it one *column*
at a time over arrays of ``(i, j)`` candidate index pairs:

* :class:`PairContext` — one batch of candidate index pairs plus a memo of
  every gathered/derived array, so clauses sharing a raw feature (e.g.
  ``duration_compare = GT`` and ``duration_compare = SIM``) pay for one
  gather;
* :class:`PairKernel` — bulk derivations.  :meth:`PairKernel.atom_mask`
  evaluates one PXQL comparison as a byte mask over all pairs (specialised
  C-level pipelines for the common equality atoms, a scalar fallback via
  :meth:`~repro.core.pxql.ast.Comparison.evaluate_value` otherwise);
  :meth:`PairKernel.derived_column` materialises one derived feature as a
  full value column for :class:`~repro.ml.matrix.FeatureMatrix` encoding;
* :func:`blocking_group_indices` / :func:`iter_candidate_batches` — lazy,
  block-at-a-time enumeration of the candidate pair space within blocking
  groups, so a ``max_candidate_pairs`` cap samples candidates *without*
  materialising the full quadratic product;
* :func:`sampling_salt` / :func:`pair_is_kept` — the order-independent
  candidate subsampling rule: a pair's keep decision hashes its two entity
  ids with a per-call salt (CRC32), so the kept subset does not depend on
  group iteration order and is identical for the kernel and dict paths.

Everything runs on stdlib C pipelines (``map`` over ``operator`` functions,
``bytes``/``bytearray``/``itertools.compress``); semantics mirror
:func:`repro.core.pairs.compute_pair_feature` and
:meth:`repro.core.pxql.ast.Comparison.evaluate` exactly, which the
differential suite (``tests/core/test_pair_pipeline_equivalence.py``)
asserts on randomized logs.
"""

from __future__ import annotations

from itertools import compress, repeat
from operator import add, and_, eq, gt, le, lt, or_, sub
from random import Random
from typing import Iterator, Sequence
from zlib import crc32

from repro.core.features import FeatureLevel
from repro.core.pairs import (
    COMPARE_SUFFIX,
    DEFAULT_PAIR_CONFIG,
    DIFF_SUFFIX,
    GREATER_THAN,
    IS_SAME_SUFFIX,
    LESS_THAN,
    NOT_SAME,
    PairFeatureConfig,
    SAME,
    SIMILAR,
)
from repro.core.pxql.ast import Comparison, Operator, Predicate
from repro.logs.records import FeatureValue
from repro.logs.store import RecordBlock

#: Derived-feature kinds (the four Table-1 families).
KIND_IS_SAME = "is_same"
KIND_COMPARE = "compare"
KIND_DIFF = "diff"
KIND_BASE = "base"

#: Candidate pairs evaluated per batch (bounds peak memory of the masks).
CANDIDATE_BATCH = 1 << 16

#: ``present + same`` -> isSame derived value (same implies present).
_IS_SAME_VALUES = (None, NOT_SAME, SAME)

#: ``numok + 2*sim + 4*lt`` -> compare derived value (sim/lt imply numok
#: and are mutually exclusive).
_COMPARE_VALUES = (None, GREATER_THAN, None, SIMILAR, None, LESS_THAN)

#: Gather-tag first letter -> encoded column array name (see
#: :meth:`~repro.logs.store.BlockColumn.gather`).
_TAG_SOURCES = {
    "c": "codes",
    "x": "floats",
    "s": "selfeq",
    "o": "num_ok",
    "r": "raw",
}


def derived_parts(pair_feature: str) -> tuple[str, str]:
    """Split a pair-feature name into (raw feature, derived kind).

    Mirrors :func:`repro.core.pairs.raw_feature_of`: the suffix is stripped
    first, so a raw feature whose *name* ends in a derived suffix is still
    interpreted as the derived feature of its prefix.
    """
    if pair_feature.endswith(IS_SAME_SUFFIX):
        return pair_feature[: -len(IS_SAME_SUFFIX)], KIND_IS_SAME
    if pair_feature.endswith(COMPARE_SUFFIX):
        return pair_feature[: -len(COMPARE_SUFFIX)], KIND_COMPARE
    if pair_feature.endswith(DIFF_SUFFIX):
        return pair_feature[: -len(DIFF_SUFFIX)], KIND_DIFF
    return pair_feature, KIND_BASE


class PairContext:
    """One batch of candidate index pairs plus a memo of derived arrays."""

    __slots__ = ("first", "second", "n", "cache")

    def __init__(self, first: Sequence[int], second: Sequence[int]) -> None:
        self.first = first
        self.second = second
        self.n = len(first)
        #: (raw feature, tag, *extras) -> gathered or derived array.
        self.cache: dict[tuple, object] = {}


def _diff_string(value_a: FeatureValue, value_b: FeatureValue) -> str | None:
    if value_a is None or value_b is None:
        return None
    return f"({value_a}, {value_b})"


def _shared_value(shared: int, value_a: FeatureValue) -> FeatureValue:
    return value_a if shared else None


class PairKernel:
    """Bulk pair-feature derivation and PXQL clause evaluation.

    One kernel wraps one :class:`~repro.logs.store.RecordBlock` and one
    :class:`~repro.core.pairs.PairFeatureConfig`; all methods take a
    :class:`PairContext` holding the candidate index pairs of the current
    batch.  The config's ``level`` gates which derived features exist —
    an atom over a feature the level does not emit can never be satisfied,
    exactly like the missing dict key in the reference path.
    """

    __slots__ = ("block", "schema", "config")

    def __init__(
        self, block: RecordBlock, config: PairFeatureConfig | None = None
    ) -> None:
        self.block = block
        self.schema = block.schema
        self.config = config if config is not None else DEFAULT_PAIR_CONFIG

    # ------------------------------------------------------------------ #
    # gathered and derived arrays (all memoised on the context)
    # ------------------------------------------------------------------ #

    def _gather(self, ctx: PairContext, raw: str, tag: str) -> list:
        """Per-pair gather of one per-record array (codes/floats/values)."""
        key = (raw, tag)
        cached = ctx.cache.get(key)
        if cached is not None:
            return cached  # type: ignore[return-value]
        column = self.block.column(raw)
        side = ctx.first if tag.endswith("a") else ctx.second
        gathered = column.gather(_TAG_SOURCES[tag[0]], side)
        ctx.cache[key] = gathered
        return gathered

    def _present(self, ctx: PairContext, raw: str) -> bytearray:
        """Both sides carry a value (missing derives to ``None``)."""
        key = (raw, "present")
        cached = ctx.cache.get(key)
        if cached is None:
            code_a = self._gather(ctx, raw, "ca")
            code_b = self._gather(ctx, raw, "cb")
            cached = bytearray(
                map(and_, map((-1).__lt__, code_a), map((-1).__lt__, code_b))
            )
            ctx.cache[key] = cached
        return cached  # type: ignore[return-value]

    def _shared(self, ctx: PairContext, raw: str) -> bytearray:
        """Exact value equality: equal codes and both sides self-equal."""
        key = (raw, "shared")
        cached = ctx.cache.get(key)
        if cached is None:
            code_a = self._gather(ctx, raw, "ca")
            code_b = self._gather(ctx, raw, "cb")
            selfeq_a = self._gather(ctx, raw, "sa")
            selfeq_b = self._gather(ctx, raw, "sb")
            cached = bytearray(
                map(and_, map(and_, map(eq, code_a, code_b), selfeq_a), selfeq_b)
            )
            ctx.cache[key] = cached
        return cached  # type: ignore[return-value]

    def _numok(self, ctx: PairContext, raw: str) -> bytearray:
        """Both sides are genuinely numeric (bools and ``None`` are not)."""
        key = (raw, "numok")
        cached = ctx.cache.get(key)
        if cached is None:
            ok_a = self._gather(ctx, raw, "oa")
            ok_b = self._gather(ctx, raw, "ob")
            cached = bytearray(map(and_, ok_a, ok_b))
            ctx.cache[key] = cached
        return cached  # type: ignore[return-value]

    def _close(self, ctx: PairContext, raw: str, tolerance: float) -> bytearray:
        """Relative closeness, branch-for-branch with ``relative_close``:
        ``a == b``, or ``scale == 0``, or ``|a - b| <= tol * scale`` where
        ``scale = max(|a|, |b|)`` under builtin-``max`` ordering (the first
        argument wins unless the second compares greater — which makes
        ``(0.0, NaN)`` "close" but ``(NaN, 0.0)`` not, exactly like the
        reference).  Garbage where a side is not numeric — callers mask
        with ``numok``.
        """
        key = (raw, "close", tolerance)
        cached = ctx.cache.get(key)
        if cached is None:
            float_a = self._gather(ctx, raw, "xa")
            float_b = self._gather(ctx, raw, "xb")
            spread = map(abs, map(sub, float_a, float_b))
            scale = list(map(max, map(abs, float_a), map(abs, float_b)))
            within = map(le, spread, map(tolerance.__mul__, scale))
            zero_scale = map((0.0).__eq__, scale)
            cached = bytearray(
                map(
                    or_,
                    map(or_, map(eq, float_a, float_b), zero_scale),
                    within,
                )
            )
            ctx.cache[key] = cached
        return cached  # type: ignore[return-value]

    def _is_same(self, ctx: PairContext, raw: str) -> bytearray:
        """The ``isSame = T`` mask of one raw feature."""
        key = (raw, "same")
        cached = ctx.cache.get(key)
        if cached is not None:
            return cached  # type: ignore[return-value]
        column = self.block.column(raw)
        if column.numeric:
            numok = self._numok(ctx, raw)
            close = self._close(ctx, raw, self.config.is_same_tolerance)
            mask = bytearray(map(and_, numok, close))
            if not column.all_numeric:
                # Mixed column: pairs that are present but not both numeric
                # fall back to exact equality (the reference's == branch).
                present = self._present(ctx, raw)
                shared = self._shared(ctx, raw)
                fallback = map(and_, map(gt, present, numok), shared)
                mask = bytearray(map(or_, mask, fallback))
        else:
            mask = self._shared(ctx, raw)
        ctx.cache[key] = mask
        return mask

    def _compare_parts(
        self, ctx: PairContext, raw: str
    ) -> tuple[bytearray, bytearray, bytearray, bytearray]:
        """(numok, SIM, LT, GT) masks of one numeric raw feature."""
        key = (raw, "compare")
        cached = ctx.cache.get(key)
        if cached is not None:
            return cached  # type: ignore[return-value]
        numok = self._numok(ctx, raw)
        close = self._close(ctx, raw, self.config.sim_threshold)
        sim = bytearray(map(and_, numok, close))
        not_close = bytearray(map(gt, numok, sim))
        float_a = self._gather(ctx, raw, "xa")
        float_b = self._gather(ctx, raw, "xb")
        less = bytearray(map(and_, not_close, map(lt, float_a, float_b)))
        greater = bytearray(map(gt, not_close, less))
        parts = (numok, sim, less, greater)
        ctx.cache[key] = parts
        return parts

    # ------------------------------------------------------------------ #
    # derived value columns
    # ------------------------------------------------------------------ #

    def derived_column(self, ctx: PairContext, raw: str, kind: str) -> list:
        """One derived pair feature materialised as a full value column.

        Values and missingness mirror
        :func:`repro.core.pairs.compute_pair_feature` exactly; the config's
        feature level is *not* applied here (callers select which kinds to
        emit), so the column always exists for fallback atom evaluation.
        """
        column = self.block.column(raw)
        if kind == KIND_IS_SAME:
            present = self._present(ctx, raw)
            same = self._is_same(ctx, raw)
            return list(map(_IS_SAME_VALUES.__getitem__, map(add, present, same)))
        if kind == KIND_COMPARE:
            if not column.numeric:
                return [None] * ctx.n
            numok, sim, less, _ = self._compare_parts(ctx, raw)
            selector = map(
                add,
                numok,
                map(add, map((2).__mul__, sim), map((4).__mul__, less)),
            )
            return list(map(_COMPARE_VALUES.__getitem__, selector))
        if kind == KIND_DIFF:
            if column.numeric:
                return [None] * ctx.n
            raw_a = self._gather(ctx, raw, "ra")
            raw_b = self._gather(ctx, raw, "rb")
            return list(map(_diff_string, raw_a, raw_b))
        shared = self._shared(ctx, raw)
        raw_a = self._gather(ctx, raw, "ra")
        return list(map(_shared_value, shared, raw_a))

    def derived_columns(
        self, ctx: PairContext, raw: str, level: FeatureLevel
    ) -> list[tuple[str, list]]:
        """Every derived (name, column) of one raw feature at a level.

        Emission order matches the reference's per-pair dict construction:
        ``isSame``, then ``compare`` *and* ``diff`` (both present from the
        comparison level up, one of them all-``None``), then the base copy.
        """
        emitted = [(raw + IS_SAME_SUFFIX, self.derived_column(ctx, raw, KIND_IS_SAME))]
        if level >= FeatureLevel.COMPARISON:
            emitted.append(
                (raw + COMPARE_SUFFIX, self.derived_column(ctx, raw, KIND_COMPARE))
            )
            emitted.append(
                (raw + DIFF_SUFFIX, self.derived_column(ctx, raw, KIND_DIFF))
            )
        if level >= FeatureLevel.FULL:
            emitted.append((raw, self.derived_column(ctx, raw, KIND_BASE)))
        return emitted

    # ------------------------------------------------------------------ #
    # clause evaluation
    # ------------------------------------------------------------------ #

    def atom_mask(self, atom: Comparison, ctx: PairContext) -> bytearray:
        """One PXQL comparison evaluated over every pair of the batch."""
        raw, kind = derived_parts(atom.feature)
        if raw not in self.schema:
            # The reference path never derives features of unknown raws, so
            # the atom reads a missing value: never satisfied.
            return bytearray(ctx.n)
        level = self.config.level
        if kind == KIND_IS_SAME:
            return self._is_same_atom_mask(atom, ctx, raw)
        if kind == KIND_COMPARE:
            if level < FeatureLevel.COMPARISON:
                return bytearray(ctx.n)
            return self._compare_atom_mask(atom, ctx, raw)
        if kind == KIND_DIFF:
            if level < FeatureLevel.COMPARISON:
                return bytearray(ctx.n)
            return self._fallback_mask(atom, ctx, raw, kind)
        if level < FeatureLevel.FULL:
            return bytearray(ctx.n)
        return self._base_atom_mask(atom, ctx, raw)

    def predicate_mask(self, predicate: Predicate, ctx: PairContext) -> bytearray:
        """A whole conjunction evaluated over every pair of the batch."""
        mask: bytearray | None = None
        for atom in predicate.atoms:
            atom_mask = self.atom_mask(atom, ctx)
            mask = atom_mask if mask is None else bytearray(map(and_, mask, atom_mask))
        if mask is None:
            return bytearray(b"\x01") * ctx.n
        return mask

    def _is_same_atom_mask(
        self, atom: Comparison, ctx: PairContext, raw: str
    ) -> bytearray:
        operator = atom.operator
        value = atom.value
        if operator is Operator.EQ:
            if value == SAME:
                return self._is_same(ctx, raw)
            if value == NOT_SAME:
                return bytearray(
                    map(gt, self._present(ctx, raw), self._is_same(ctx, raw))
                )
            return bytearray(ctx.n)
        if operator is Operator.NE:
            if value == SAME:
                return bytearray(
                    map(gt, self._present(ctx, raw), self._is_same(ctx, raw))
                )
            if value == NOT_SAME:
                return self._is_same(ctx, raw)
            return bytearray(self._present(ctx, raw))
        return self._fallback_mask(atom, ctx, raw, KIND_IS_SAME)

    def _compare_atom_mask(
        self, atom: Comparison, ctx: PairContext, raw: str
    ) -> bytearray:
        if not self.block.column(raw).numeric:
            # The reference derives ``f_compare = None`` for nominal raws,
            # and a missing value satisfies no comparison.
            return bytearray(ctx.n)
        operator = atom.operator
        value = atom.value
        if operator is Operator.EQ or operator is Operator.NE:
            numok, sim, less, greater = self._compare_parts(ctx, raw)
            by_value = {SIMILAR: sim, LESS_THAN: less, GREATER_THAN: greater}
            matching = None
            for constant, mask in by_value.items():
                if value == constant:
                    matching = mask
                    break
            if operator is Operator.EQ:
                return bytearray(matching) if matching is not None else bytearray(ctx.n)
            if matching is None:
                return bytearray(numok)
            return bytearray(map(gt, numok, matching))
        return self._fallback_mask(atom, ctx, raw, KIND_COMPARE)

    def _base_atom_mask(
        self, atom: Comparison, ctx: PairContext, raw: str
    ) -> bytearray:
        if atom.operator is Operator.EQ:
            value = atom.value
            if value is None or value != value:
                # ``None`` and NaN satisfy no equality in the reference.
                return bytearray(ctx.n)
            code = self.block.column(raw).code_of.get(value, -1)
            if code < 0:
                return bytearray(ctx.n)
            shared = self._shared(ctx, raw)
            code_a = self._gather(ctx, raw, "ca")
            return bytearray(map(and_, shared, map(code.__eq__, code_a)))
        return self._fallback_mask(atom, ctx, raw, KIND_BASE)

    def _fallback_mask(
        self, atom: Comparison, ctx: PairContext, raw: str, kind: str
    ) -> bytearray:
        """Scalar evaluation mapped over the materialised derived column."""
        column = self.derived_column(ctx, raw, kind)
        return bytearray(map(atom.evaluate_value, column))


# --------------------------------------------------------------------- #
# candidate enumeration and order-independent subsampling
# --------------------------------------------------------------------- #


def blocking_group_indices(
    block: RecordBlock, blocking: Sequence[str]
) -> list[list[int]]:
    """Record indices grouped by their blocked raw values.

    Mirrors the reference's record grouping: records whose blocked key
    contains a missing *or NaN* value are dropped (neither can ever satisfy
    ``isSame = T``), and groups appear in first-occurrence order.  Grouping
    by value *codes* is exact because codes are assigned under dict
    equality with a canonical NaN slot — the same relation the reference's
    value-tuple dict keys use once NaN rows are excluded.

    Partition-aware: rows are consumed through the block's
    :meth:`~repro.logs.store.RecordBlock.key_chunks` iterator — one slice
    for a monolithic block, one per chunk for a
    :class:`~repro.logs.chunkstore.ChunkedRecordBlock` — so a spilled
    column's chunks are each touched exactly once and never all resident.

    Blocks that memoise their groups
    (:meth:`~repro.logs.store.RecordBlock.blocking_groups`, maintained in
    O(delta) under appends) are delegated to; the scan below remains the
    reference path for bare block-alikes.
    """
    n = len(block)
    if not blocking:
        return [list(range(n))]
    memoised = getattr(block, "blocking_groups", None)
    if memoised is not None:
        return memoised(blocking)
    groups: dict[tuple[int, ...], list[int]] = {}
    for start, code_slices, selfeq_slices in block.key_chunks(blocking):
        for offset, key in enumerate(zip(*code_slices)):
            if -1 in key:
                continue
            if not all(selfeq[offset] for selfeq in selfeq_slices):
                continue
            groups.setdefault(key, []).append(start + offset)
    return list(groups.values())


def sampling_salt(rng: Random) -> int:
    """The per-enumeration salt for hash-based candidate subsampling."""
    return rng.getrandbits(32)


def keep_limit(max_candidate_pairs: int, total_candidates: int) -> int:
    """The CRC32 threshold below which a candidate pair is kept."""
    return int(max_candidate_pairs / total_candidates * 2**32)


def pair_is_kept(first_id: str, second_id: str, salt: int, limit: int) -> bool:
    """Order-independent keep decision for one candidate pair.

    The decision depends only on the two entity ids and the salt — never on
    how many candidates were enumerated before this one — so the sampled
    subset is invariant under record and blocking-group reordering.  The
    dict reference path and the kernel's batched twin
    (:func:`iter_candidate_batches`) share this exact rule.
    """
    state = crc32(first_id.encode("utf-8"), salt)
    return crc32(second_id.encode("utf-8"), state) < limit


def iter_candidate_batches(
    block: RecordBlock,
    groups: Sequence[Sequence[int]],
    salt: int | None = None,
    limit: int = 0,
    batch_size: int = CANDIDATE_BATCH,
) -> Iterator[tuple[list[int], list[int]]]:
    """Candidate ``(first, second)`` index arrays, one bounded batch at a time.

    Enumerates every ordered pair of distinct records within each blocking
    group, in group order then row-major order — the reference's exact
    sequence.  When ``salt`` is given, candidates are subsampled *during*
    enumeration with the :func:`pair_is_kept` rule (vectorised: the CRC
    state of the first id is computed once per row and folded with every
    second id at C level), so the full product is never materialised.
    """
    first_batch: list[int] = []
    second_batch: list[int] = []
    id_bytes = block.id_bytes
    for group in groups:
        size = len(group)
        if size < 2:
            continue
        members = list(group)
        for position, row in enumerate(members):
            seconds = members[:position] + members[position + 1 :]
            if salt is not None:
                state = crc32(id_bytes[row], salt)
                kept = map(
                    limit.__gt__,
                    map(crc32, map(id_bytes.__getitem__, seconds), repeat(state)),
                )
                seconds = list(compress(seconds, kept))
                if not seconds:
                    continue
            first_batch.extend(repeat(row, len(seconds)))
            second_batch.extend(seconds)
            if len(first_batch) >= batch_size:
                yield first_batch, second_batch
                first_batch = []
                second_batch = []
    if first_batch:
        yield first_batch, second_batch
