"""The SimButDiff baseline (Section 5.2, Algorithm 2).

SimButDiff works only with the binary ``isSame`` features.  It finds the
training examples that are similar to the pair of interest (agree on at
least a fraction ``s`` of the isSame features), then scores each feature by
a what-if analysis: among the similar pairs that *disagree* with the pair of
interest on the feature, what fraction performed as expected?  The
explanation is the conjunction ``feature = <pair's value>`` of the top-w
scoring features.
"""

from __future__ import annotations

import random

from repro.core.examples import (
    Label,
    TrainingExample,
    construct_training_examples,
    find_record,
    records_for_query,
)
from repro.core.explanation import Explanation, evaluate_explanation
from repro.core.features import PERFORMANCE_METRIC, FeatureSchema, infer_schema
from repro.core.pairs import (
    IS_SAME_SUFFIX,
    PairFeatureConfig,
    compute_pair_features,
    raw_feature_of,
)
from repro.core.pxql.ast import Comparison, Operator, Predicate, TRUE_PREDICATE
from repro.core.pxql.query import PXQLQuery
from repro.core.registry import register_explainer
from repro.exceptions import ConfigurationError, ExplanationError
from repro.logs.store import ExecutionLog


@register_explainer("simbutdiff", override=True)
class SimButDiffExplainer:
    """What-if analysis over the isSame features of similar pairs."""

    name = "SimButDiff"

    def __init__(
        self,
        similarity_threshold: float = 0.9,
        pair_config: PairFeatureConfig | None = None,
        sample_size: int = 2000,
        rng: random.Random | None = None,
    ) -> None:
        if not 0.0 < similarity_threshold <= 1.0:
            raise ConfigurationError("similarity_threshold must be in (0, 1]")
        self.similarity_threshold = similarity_threshold
        self.pair_config = pair_config if pair_config is not None else PairFeatureConfig()
        self.sample_size = sample_size
        self._rng = rng if rng is not None else random.Random(0)

    def explain(
        self,
        log: ExecutionLog,
        query: PXQLQuery,
        schema: FeatureSchema | None = None,
        width: int | None = None,
        auto_despite: bool = False,
        examples: list[TrainingExample] | None = None,
    ) -> Explanation:
        """Generate a width-``width`` explanation via Algorithm 2.

        ``auto_despite`` is accepted for interface compatibility and ignored.
        Precomputed training ``examples`` (from the session layer) replace
        the internal related-pair enumeration.
        """
        if not query.has_pair:
            raise ExplanationError("the query must be bound to a pair of interest")
        width = width if width is not None else 3
        records = records_for_query(log, query)
        schema = schema if schema is not None else infer_schema(records)
        first = find_record(log, query, query.first_id)
        second = find_record(log, query, query.second_id)
        pair_values = compute_pair_features(first, second, schema, self.pair_config)

        if examples is None:
            examples = construct_training_examples(
                log, query, schema,
                config=self.pair_config,
                sample_size=self.sample_size,
                rng=self._rng,
            )
        is_same_features = sorted(
            name
            for name in pair_values
            if name.endswith(IS_SAME_SUFFIX)
            and raw_feature_of(name) != PERFORMANCE_METRIC
        )

        similar = self._similar_examples(examples, pair_values, is_same_features)
        scores = self._feature_scores(similar, pair_values, is_same_features)

        atoms: list[Comparison] = []
        for feature, _ in scores:
            if len(atoms) >= width:
                break
            value = pair_values.get(feature)
            if value is None:
                continue
            atoms.append(Comparison(feature, Operator.EQ, value))
        because = Predicate.conjunction(atoms)

        explanation = Explanation(
            because=because, despite=TRUE_PREDICATE, technique=self.name
        )
        if examples:
            explanation = explanation.with_metrics(
                evaluate_explanation(explanation, examples)
            )
        return explanation

    # ------------------------------------------------------------------ #
    # Algorithm 2 internals
    # ------------------------------------------------------------------ #

    def _similar_examples(
        self,
        examples: list[TrainingExample],
        pair_values: dict,
        is_same_features: list[str],
    ) -> list[TrainingExample]:
        """Examples that agree with the pair of interest on >= s of the features."""
        if not is_same_features:
            return list(examples)
        needed = self.similarity_threshold * len(is_same_features)
        similar = []
        for example in examples:
            agreements = sum(
                1
                for feature in is_same_features
                if example.values.get(feature) is not None
                and example.values.get(feature) == pair_values.get(feature)
            )
            if agreements >= needed:
                similar.append(example)
        return similar

    def _feature_scores(
        self,
        similar: list[TrainingExample],
        pair_values: dict,
        is_same_features: list[str],
    ) -> list[tuple[str, float]]:
        """Per-feature what-if scores, sorted decreasing."""
        scores: list[tuple[str, float]] = []
        for feature in is_same_features:
            pair_value = pair_values.get(feature)
            if pair_value is None:
                continue
            disagreeing = [
                example
                for example in similar
                if example.values.get(feature) is not None
                and example.values.get(feature) != pair_value
            ]
            if not disagreeing:
                scores.append((feature, 0.0))
                continue
            expected = sum(1 for example in disagreeing if example.label is Label.EXPECTED)
            scores.append((feature, expected / len(disagreeing)))
        scores.sort(key=lambda item: (item[1], item[0]), reverse=True)
        return scores
