"""The RuleOfThumb baseline (Section 5.1).

RuleOfThumb ignores the query: it ranks raw features once by their global
impact on runtime using Relief (RReliefF, because the target is numeric and
features are mixed with missing values), then answers every query by
pointing to the top-w ranked features on which the pair of interest
disagrees, as ``feature_isSame = F`` predicates.
"""

from __future__ import annotations

import random

from repro.core.examples import find_record
from repro.core.explanation import Explanation, evaluate_explanation
from repro.core.features import PERFORMANCE_METRIC, FeatureLevel, FeatureSchema, infer_schema
from repro.core.pairs import (
    IS_SAME_SUFFIX,
    NOT_SAME,
    PairFeatureConfig,
    compute_pair_features,
)
from repro.core.pxql.ast import Comparison, Operator, Predicate, TRUE_PREDICATE
from repro.core.pxql.query import PXQLQuery
from repro.core.examples import construct_training_examples, records_for_query
from repro.core.registry import register_explainer
from repro.exceptions import ExplanationError
from repro.logs.store import ExecutionLog
from repro.ml.relief import relieff_importance


@register_explainer("ruleofthumb", override=True)
class RuleOfThumbExplainer:
    """Explain by pointing at globally important features the pair disagrees on."""

    name = "RuleOfThumb"

    def __init__(
        self,
        pair_config: PairFeatureConfig | None = None,
        num_neighbors: int = 10,
        relief_sample_size: int | None = 150,
        rng: random.Random | None = None,
    ) -> None:
        self.pair_config = pair_config if pair_config is not None else PairFeatureConfig()
        self.num_neighbors = num_neighbors
        self.relief_sample_size = relief_sample_size
        self._rng = rng if rng is not None else random.Random(0)
        self._importance_cache: dict[int, dict[str, float]] = {}

    def rank_features(
        self, log: ExecutionLog, query: PXQLQuery, schema: FeatureSchema
    ) -> list[tuple[str, float]]:
        """Raw features sorted by decreasing Relief importance.

        The ranking depends only on the log (not on the query), so it is
        cached per log object — RuleOfThumb's "identification of important
        features is executed only once".
        """
        cache_key = id(log) ^ hash(query.entity)
        if cache_key not in self._importance_cache:
            records = records_for_query(log, query)
            if not records:
                raise ExplanationError("the log has no records of the queried entity kind")
            rows = [record.features for record in records]
            targets = [record.duration for record in records]
            numeric = {name: schema.is_numeric(name) for name in schema.names()
                       if name != PERFORMANCE_METRIC}
            importance = relieff_importance(
                rows,
                targets,
                numeric,
                features=[name for name in schema.names() if name != PERFORMANCE_METRIC],
                num_neighbors=self.num_neighbors,
                sample_size=self.relief_sample_size,
                rng=self._rng,
            )
            self._importance_cache[cache_key] = importance
        importance = self._importance_cache[cache_key]
        return sorted(importance.items(), key=lambda item: item[1], reverse=True)

    def explain(
        self,
        log: ExecutionLog,
        query: PXQLQuery,
        schema: FeatureSchema | None = None,
        width: int | None = None,
        auto_despite: bool = False,
        examples: list | None = None,
    ) -> Explanation:
        """Top-``width`` important features the pair disagrees on.

        The ``auto_despite`` flag is accepted for interface compatibility but
        ignored: RuleOfThumb never generates a despite clause.  Precomputed
        training ``examples`` (from the session layer) are only used to
        score the explanation's metrics.
        """
        if not query.has_pair:
            raise ExplanationError("the query must be bound to a pair of interest")
        width = width if width is not None else 3
        records = records_for_query(log, query)
        schema = schema if schema is not None else infer_schema(records)
        first = find_record(log, query, query.first_id)
        second = find_record(log, query, query.second_id)
        pair_values = compute_pair_features(first, second, schema, self.pair_config)

        ranked = self.rank_features(log, query, schema)
        atoms: list[Comparison] = []
        for feature, _ in ranked:
            if len(atoms) >= width:
                break
            is_same_feature = feature + IS_SAME_SUFFIX
            if pair_values.get(is_same_feature) == NOT_SAME:
                atoms.append(Comparison(is_same_feature, Operator.EQ, NOT_SAME))
        because = Predicate.conjunction(atoms)

        explanation = Explanation(
            because=because, despite=TRUE_PREDICATE, technique=self.name
        )
        if examples is None:
            examples = construct_training_examples(
                log, query, schema, config=self.pair_config, rng=self._rng
            )
        if examples:
            explanation = explanation.with_metrics(
                evaluate_explanation(explanation, examples)
            )
        return explanation
