"""Baseline explanation-generation techniques (Section 5).

* :class:`~repro.core.baselines.rule_of_thumb.RuleOfThumbExplainer` — rank
  features once by their global impact on runtime (Relief) and point to the
  top-w features the pair of interest disagrees on;
* :class:`~repro.core.baselines.sim_but_diff.SimButDiffExplainer` — among
  pairs similar to the pair of interest (on the isSame features), perform a
  what-if analysis per feature: had this feature been different, how likely
  is it that the pair would have performed as expected?
"""

from repro.core.baselines.rule_of_thumb import RuleOfThumbExplainer
from repro.core.baselines.sim_but_diff import SimButDiffExplainer

__all__ = ["RuleOfThumbExplainer", "SimButDiffExplainer"]
