"""Exception hierarchy shared by every repro subpackage.

Keeping all exception types in one module lets callers catch
:class:`ReproError` to handle any library failure, or a specific subclass
when they can act on the precise cause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid MapReduce or simulator configuration value was supplied."""


class SimulationError(ReproError):
    """The cluster simulator reached an inconsistent state."""


class WorkloadError(ReproError):
    """A workload (Pig script / dataset) specification is invalid."""


class LogFormatError(ReproError):
    """An execution-log file could not be parsed."""


class DuplicateRecordError(LogFormatError):
    """A job or task id was added to an execution log twice.

    Raised by the log mutation APIs (:meth:`~repro.logs.store.ExecutionLog.add_job`,
    :meth:`~repro.logs.store.ExecutionLog.add_task`,
    :meth:`~repro.logs.store.ExecutionLog.extend`) and by
    :meth:`~repro.logs.store.ExecutionLog.load` for duplicate-id files.
    Subclasses :class:`LogFormatError` so existing handlers of malformed
    logs keep working; ``kind`` and ``record_id`` let callers act on the
    precise duplicate without string matching.
    """

    def __init__(self, message: str, kind: str = "record", record_id: str = ""):
        self.kind = kind
        self.record_id = record_id
        super().__init__(message)


class ParserError(LogFormatError):
    """A real-world log file (Hadoop/Spark) could not be ingested.

    Like :class:`ServiceError`, every parser error carries a stable
    machine-readable ``code`` (one of the ``PARSE_*`` constants below) so
    callers — and the service layer, which folds any
    :class:`LogFormatError` into a ``log_load_failed`` wire response — can
    branch on the precise failure without string matching.
    """

    default_code = "malformed_line"

    def __init__(self, message: str, code: str | None = None):
        self.code = code if code is not None else self.default_code
        super().__init__(message)


#: Stable :class:`ParserError` codes.
PARSE_UNKNOWN_FORMAT = "unknown_format"
PARSE_MALFORMED_LINE = "malformed_line"
PARSE_MISSING_FIELD = "missing_field"
PARSE_TRUNCATED_FILE = "truncated_file"
PARSE_UNKNOWN_EVENT = "unknown_event"
PARSE_EMPTY_LOG = "empty_log"


class UnknownFeatureError(ReproError):
    """A feature name was referenced that is not part of the schema."""

    def __init__(self, feature: str, available: list[str] | None = None):
        self.feature = feature
        self.available = list(available) if available is not None else None
        message = f"unknown feature: {feature!r}"
        if self.available:
            preview = ", ".join(sorted(self.available)[:8])
            message += f" (known features include: {preview}, ...)"
        super().__init__(message)


class PXQLSyntaxError(ReproError):
    """A PXQL query or predicate string could not be parsed."""

    def __init__(self, message: str, position: int | None = None, text: str | None = None):
        self.position = position
        self.text = text
        if position is not None and text is not None:
            pointer = " " * position + "^"
            message = f"{message} at position {position}\n  {text}\n  {pointer}"
        super().__init__(message)


class PXQLValidationError(ReproError):
    """A PXQL query parsed correctly but violates a semantic rule."""


class ExplanationError(ReproError):
    """Explanation generation failed (e.g. no related pairs in the log)."""


class EvaluationError(ReproError):
    """The evaluation harness was asked to do something impossible."""


class ServiceError(ReproError):
    """Base class for service-layer failures (:mod:`repro.service`).

    Every service error carries a stable machine-readable ``code`` (one of
    :class:`repro.service.protocol.ErrorCode`'s values) so it maps directly
    onto a wire-level ``ErrorResponse``.
    """

    default_code = "internal_error"

    def __init__(self, message: str, code: str | None = None):
        self.code = code if code is not None else self.default_code
        super().__init__(message)


class ProtocolError(ServiceError):
    """A service request or response violates the wire protocol."""

    default_code = "invalid_request"


class CatalogError(ServiceError):
    """A log-catalog operation failed (unknown name, load failure, ...)."""

    default_code = "unknown_log"


class DiffError(ServiceError):
    """A cross-log diff could not be computed (:mod:`repro.diff`)."""

    default_code = "diff_failed"
