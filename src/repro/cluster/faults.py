"""Fault injection for the cluster simulator.

Two fault classes matter for the kinds of explanations PerfXplain produces:

* **slow nodes** — an instance whose effective speed is degraded (contended
  hypervisor, failing disk); this creates straggler tasks and job-to-job
  runtime variance that is *not* explained by configuration differences;
* **failing task attempts** — an attempt that dies partway through and is
  re-executed, inflating task and job durations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.cluster.cluster import Cluster
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class FaultModel:
    """Probabilistic fault injection parameters.

    :param slow_node_probability: chance that a provisioned node is degraded.
    :param slow_node_factor: speed multiplier applied to degraded nodes.
    :param task_failure_probability: chance that any task attempt fails and
        must be retried from scratch.
    :param failure_progress_mean: average fraction of the attempt's work that
        completes before it fails (wasted time added to the retry).
    """

    slow_node_probability: float = 0.0
    slow_node_factor: float = 0.5
    task_failure_probability: float = 0.0
    failure_progress_mean: float = 0.5

    def __post_init__(self) -> None:
        for name in ("slow_node_probability", "task_failure_probability",
                     "failure_progress_mean"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1]")
        if not 0.0 < self.slow_node_factor <= 1.0:
            raise ConfigurationError("slow_node_factor must be in (0, 1]")

    @property
    def enabled(self) -> bool:
        """Whether any fault can actually occur under this model."""
        return self.slow_node_probability > 0 or self.task_failure_probability > 0

    def degrade_cluster(self, cluster: Cluster, rng: random.Random) -> list[int]:
        """Apply slow-node degradation in place; returns degraded indices."""
        degraded: list[int] = []
        if self.slow_node_probability <= 0:
            return degraded
        for instance in cluster:
            if rng.random() < self.slow_node_probability:
                instance.speed_factor *= self.slow_node_factor
                degraded.append(instance.index)
        return degraded

    def draw_failure(self, rng: random.Random) -> float | None:
        """Decide whether an attempt fails.

        Returns the fraction of work completed before failing, or ``None``
        if the attempt succeeds.
        """
        if self.task_failure_probability <= 0:
            return None
        if rng.random() >= self.task_failure_probability:
            return None
        progress = rng.betavariate(2.0, 2.0)
        center = self.failure_progress_mean
        return max(0.05, min(0.95, progress * 2 * center))


#: A fault model that never injects anything (the default).
NO_FAULTS = FaultModel()
