"""Reference processor-sharing simulation loop (frozen pre-event-core path).

This module preserves the original :class:`SimulationEngine` loop exactly as
it shipped before the event-core overhaul in :mod:`repro.cluster.engine`,
mirroring the role :mod:`repro.ml.rowpath` and :mod:`repro.core.pairref`
play for the columnar training and pair pipelines.  The loop recomputes
every running attempt's rate at every event — O(running tasks^2) per event —
by calling :meth:`ReferenceSimulationEngine._task_speed` once per attempt,
each call scanning the full running list for co-located attempts.

The event-core engine must be a pure re-organisation of this arithmetic:
the differential suite (``tests/cluster/test_engine_equivalence.py``) runs
both engines over randomized clusters, jobs, fault models and seeds and
asserts **bit-identical** job/task records, per-attempt phase timings and
utilization traces.  Keep this file frozen; behaviour changes belong in
:mod:`repro.cluster.engine` (and must keep the differential green by being
no changes at all).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.cluster.cluster import Cluster
from repro.cluster.engine import (
    _COLOCATION_PENALTY,
    _CPU_WEIGHT,
    _EPSILON,
    _OS_MEMORY_MB,
    JobExecution,
    SimulationResult,
    TaskExecution,
    _merge_wall,
)
from repro.cluster.faults import NO_FAULTS, FaultModel
from repro.cluster.instance import Instance
from repro.cluster.jobs import JobSpec
from repro.cluster.scheduler import SlotScheduler
from repro.cluster.tasks import Phase, PhaseKind, TaskAttempt, TaskType
from repro.cluster.trace import UtilizationInterval, UtilizationTrace
from repro.exceptions import SimulationError


@dataclass
class _RunningTask:
    """Book-keeping for an attempt currently holding a slot."""

    attempt: TaskAttempt
    instance: Instance
    start_time: float
    wave: int
    slot_order: int
    phase_index: int = 0
    remaining_in_phase: float = 0.0
    phase_wall_seconds: dict[str, float] = field(default_factory=dict)
    work_done: float = 0.0
    failure_at: float | None = None
    prior_attempts: int = 0
    prior_wall_seconds: dict[str, float] = field(default_factory=dict)
    original_start: float | None = None

    def __post_init__(self) -> None:
        self.remaining_in_phase = self.current_phase.nominal_seconds

    @property
    def current_phase(self) -> Phase:
        return self.attempt.phases[self.phase_index]

    @property
    def total_nominal(self) -> float:
        return self.attempt.nominal_duration

    def advance_phase(self) -> bool:
        """Move to the next phase; returns True when the attempt is done."""
        self.phase_index += 1
        if self.phase_index >= len(self.attempt.phases):
            return True
        self.remaining_in_phase = self.current_phase.nominal_seconds
        return False


class ReferenceSimulationEngine:
    """The frozen pre-event-core simulation loop (see module docstring)."""

    def __init__(
        self,
        cluster: Cluster,
        fault_model: FaultModel = NO_FAULTS,
        rng: random.Random | None = None,
        jitter: float = 0.03,
    ) -> None:
        """
        :param cluster: the provisioned cluster to run on.
        :param fault_model: probabilistic fault injection.
        :param rng: random generator driving faults and runtime jitter.
        :param jitter: multiplicative noise applied to each phase duration
            (models OS scheduling and I/O variance on real machines).
        """
        self._cluster = cluster
        self._faults = fault_model
        self._rng = rng if rng is not None else random.Random(0)
        self._jitter = jitter

    def run(self, job: JobSpec, start_time: float | None = None) -> SimulationResult:
        """Simulate a job and return its execution record.

        :param job: the job specification to run.
        :param start_time: wall-clock start; defaults to the job submit time.
        """
        clock = job.submit_time if start_time is None else start_time
        scheduler = SlotScheduler(self._cluster, job.config, job.map_tasks, job.reduce_tasks)
        trace = UtilizationTrace()
        running: list[_RunningTask] = []
        finished: list[TaskExecution] = []
        failure_memory: dict[str, tuple[int, dict[str, float], float]] = {}
        job_start = clock

        while scheduler.has_pending() or running:
            for assignment in scheduler.next_assignments():
                running.append(
                    self._start_attempt(assignment.attempt, assignment.instance, clock,
                                        assignment.wave, assignment.slot_order,
                                        failure_memory)
                )
            if not running:
                raise SimulationError(
                    "no task could be scheduled although work remains; "
                    "check slot configuration"
                )

            speeds = {id(task): self._task_speed(task, running, clock) for task in running}
            step = min(
                task.remaining_in_phase / max(speeds[id(task)], _EPSILON)
                for task in running
            )
            # Background load changes create rate changes too: never step
            # past the next episode boundary of any busy instance.
            busy_instances = {task.instance.index: task.instance for task in running}
            for instance in busy_instances.values():
                boundary = instance.next_background_change(clock)
                if boundary > clock:
                    step = min(step, boundary - clock)
            step = max(step, _EPSILON)

            self._record_intervals(trace, running, clock, clock + step)

            for task in running:
                speed = speeds[id(task)]
                progress = step * speed
                task.remaining_in_phase -= progress
                task.work_done += progress
                phase_name = task.current_phase.name
                task.phase_wall_seconds[phase_name] = (
                    task.phase_wall_seconds.get(phase_name, 0.0) + step
                )

            clock += step

            still_running: list[_RunningTask] = []
            for task in running:
                if task.remaining_in_phase > _EPSILON and speeds[id(task)] <= _EPSILON:
                    raise SimulationError(
                        f"task {task.attempt.task_id} is not making progress"
                    )
                failed = (
                    task.failure_at is not None
                    and task.work_done >= task.failure_at * task.total_nominal
                )
                if failed:
                    scheduler.release(task.instance, task.attempt, completed=False)
                    failure_memory[task.attempt.task_id] = (
                        task.prior_attempts + 1,
                        _merge_wall(task.prior_wall_seconds, task.phase_wall_seconds),
                        task.original_start if task.original_start is not None else task.start_time,
                    )
                    scheduler.requeue(task.attempt)
                    continue
                if task.remaining_in_phase <= _EPSILON:
                    done = task.advance_phase()
                    if done:
                        scheduler.release(task.instance, task.attempt, completed=True)
                        finished.append(self._finish_task(task, job.job_id, clock))
                        continue
                still_running.append(task)
            running = still_running

        job_execution = self._summarise_job(job, job_start, clock, finished)
        finished.sort(key=lambda execution: (execution.task_type.value, execution.task_id))
        return SimulationResult(
            job=job_execution, tasks=finished, trace=trace, cluster=self._cluster
        )

    # ------------------------------------------------------------------ #
    # internal helpers
    # ------------------------------------------------------------------ #

    def _start_attempt(
        self,
        attempt: TaskAttempt,
        instance: Instance,
        clock: float,
        wave: int,
        slot_order: int,
        failure_memory: dict[str, tuple[int, dict[str, float], float]],
    ) -> _RunningTask:
        prior_attempts, prior_wall, original_start = failure_memory.pop(
            attempt.task_id, (0, {}, clock)
        )
        task = _RunningTask(
            attempt=attempt,
            instance=instance,
            start_time=clock,
            wave=wave,
            slot_order=slot_order,
            prior_attempts=prior_attempts,
            prior_wall_seconds=prior_wall,
            original_start=original_start if prior_attempts else clock,
        )
        jittered = []
        for phase in attempt.phases:
            noise = 1.0 + self._rng.gauss(0.0, self._jitter) if self._jitter else 1.0
            jittered.append(
                Phase(phase.name, max(0.0, phase.nominal_seconds * max(0.2, noise)), phase.kind)
            )
        task.attempt = TaskAttempt(
            task_id=attempt.task_id,
            task_type=attempt.task_type,
            phases=jittered,
            counters=attempt.counters,
            attempt_number=prior_attempts,
        )
        task.remaining_in_phase = task.current_phase.nominal_seconds
        remaining_tries = None
        if self._faults.enabled:
            remaining_tries = prior_attempts < 1  # only allow one injected failure per task
            if remaining_tries:
                task.failure_at = self._faults.draw_failure(self._rng)
        return task

    def _task_speed(
        self, task: _RunningTask, running: list[_RunningTask], clock: float
    ) -> float:
        instance = task.instance
        co_located = [t for t in running if t.instance.index == instance.index]
        cpu_demand = instance.background_at(clock) + sum(
            _CPU_WEIGHT[t.current_phase.kind] for t in co_located
        )
        cpu_factor = min(1.0, instance.cores / max(cpu_demand, _EPSILON))
        colocation_factor = 1.0 / (1.0 + _COLOCATION_PENALTY * max(0, len(co_located) - 1))
        kind = task.current_phase.kind
        if kind is PhaseKind.CPU:
            return instance.effective_core_speed() * cpu_factor * colocation_factor
        if kind is PhaseKind.DISK:
            disk_users = sum(1 for t in co_located if t.current_phase.kind is PhaseKind.DISK)
            return instance.speed_factor * colocation_factor / max(1, disk_users)
        if kind is PhaseKind.NETWORK:
            net_users = sum(1 for t in co_located if t.current_phase.kind is PhaseKind.NETWORK)
            return 1.0 / max(1, net_users)
        return instance.speed_factor

    def _record_intervals(
        self,
        trace: UtilizationTrace,
        running: list[_RunningTask],
        start: float,
        end: float,
    ) -> None:
        if end - start <= _EPSILON / 2:
            return
        by_instance: dict[int, list[_RunningTask]] = {}
        for task in running:
            by_instance.setdefault(task.instance.index, []).append(task)
        total_net_in = 0.0
        for tasks in by_instance.values():
            instance = tasks[0].instance
            net_users = sum(1 for t in tasks if t.current_phase.kind is PhaseKind.NETWORK)
            total_net_in += instance.instance_type.network_mbps * min(1, net_users)
        num_instances = max(1, len(self._cluster))

        for instance in self._cluster:
            tasks = by_instance.get(instance.index, [])
            running_maps = sum(1 for t in tasks if t.attempt.task_type is TaskType.MAP)
            running_reduces = len(tasks) - running_maps
            background = instance.background_at(start)
            cpu_demand = background + sum(
                _CPU_WEIGHT[t.current_phase.kind] for t in tasks
            )
            disk_users = sum(1 for t in tasks if t.current_phase.kind is PhaseKind.DISK)
            net_users = sum(1 for t in tasks if t.current_phase.kind is PhaseKind.NETWORK)
            disk_rate = instance.instance_type.disk_mbps if disk_users else 0.0
            net_in = instance.instance_type.network_mbps if net_users else 0.0
            interval = UtilizationInterval(
                start=start,
                end=end,
                running_maps=running_maps,
                running_reduces=running_reduces,
                cpu_demand=cpu_demand,
                cpu_utilization=min(1.0, cpu_demand / instance.cores),
                disk_read_mbps=disk_rate * 0.6,
                disk_write_mbps=disk_rate * 0.4,
                net_in_mbps=net_in,
                net_out_mbps=total_net_in / num_instances,
                memory_used_mb=_OS_MEMORY_MB + len(tasks) * 200.0
                + background * 400.0,
                background_load=background,
                background_extra_procs=instance.extra_procs_at(start),
            )
            trace.add(instance.index, interval)

    def _finish_task(self, task: _RunningTask, job_id: str, clock: float) -> TaskExecution:
        wall = _merge_wall(task.prior_wall_seconds, task.phase_wall_seconds)
        start = task.original_start if task.original_start is not None else task.start_time
        return TaskExecution(
            task_id=task.attempt.task_id,
            job_id=job_id,
            task_type=task.attempt.task_type,
            instance_index=task.instance.index,
            hostname=task.instance.hostname,
            tracker_name=task.instance.tracker_name,
            start_time=start,
            finish_time=clock,
            wave=task.wave,
            slot_order=task.slot_order,
            phase_wall_seconds=wall,
            counters=task.attempt.counters.as_dict(),
            attempts=task.prior_attempts + 1,
        )

    def _summarise_job(
        self,
        job: JobSpec,
        start: float,
        finish: float,
        tasks: list[TaskExecution],
    ) -> JobExecution:
        counters: dict[str, int] = {}
        for execution in tasks:
            for key, value in execution.counters.items():
                counters[key] = counters.get(key, 0) + value
        return JobExecution(
            job_id=job.job_id,
            name=job.name,
            submit_time=job.submit_time,
            start_time=start,
            finish_time=finish,
            num_map_tasks=job.num_map_tasks,
            num_reduce_tasks=job.num_reduce_tasks,
            num_instances=len(self._cluster),
            config=job.config,
            metadata=dict(job.metadata),
            counters=counters,
        )
