"""Task model: map and reduce attempts as sequences of work phases.

A task attempt is a list of :class:`Phase` objects, each with a *nominal*
duration — the time the phase would take on a healthy, otherwise-idle
instance of the reference type.  The simulation engine stretches those
nominal durations according to the contention on the instance at each point
in time, which is what produces the runtime patterns the paper explains
(e.g. the last task in a wave running faster because it no longer shares the
machine).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError


class TaskType(enum.Enum):
    """Hadoop task categories."""

    MAP = "MAP"
    REDUCE = "REDUCE"


class PhaseKind(enum.Enum):
    """Resource a phase predominantly consumes.

    The engine applies CPU contention to ``CPU`` phases, disk sharing to
    ``DISK`` phases and network sharing to ``NETWORK`` phases.
    """

    CPU = "cpu"
    DISK = "disk"
    NETWORK = "network"
    OVERHEAD = "overhead"


@dataclass
class Phase:
    """One phase of a task attempt.

    :param name: phase label (``"map"``, ``"shuffle"``, ``"sort"``, ...).
    :param nominal_seconds: duration at full speed with no contention.
    :param kind: which resource the phase stresses.
    """

    name: str
    nominal_seconds: float
    kind: PhaseKind

    def __post_init__(self) -> None:
        if self.nominal_seconds < 0:
            raise ConfigurationError("phase duration must be >= 0")


@dataclass
class TaskCounters:
    """Hadoop-style counters attached to a task attempt."""

    input_bytes: int = 0
    input_records: int = 0
    output_bytes: int = 0
    output_records: int = 0
    hdfs_bytes_read: int = 0
    hdfs_bytes_written: int = 0
    file_bytes_read: int = 0
    file_bytes_written: int = 0
    spilled_records: int = 0
    combine_input_records: int = 0
    combine_output_records: int = 0
    shuffle_bytes: int = 0

    def as_dict(self) -> dict[str, int]:
        """Counters as a plain dictionary (used by the log writer)."""
        return {
            "input_bytes": self.input_bytes,
            "input_records": self.input_records,
            "output_bytes": self.output_bytes,
            "output_records": self.output_records,
            "hdfs_bytes_read": self.hdfs_bytes_read,
            "hdfs_bytes_written": self.hdfs_bytes_written,
            "file_bytes_read": self.file_bytes_read,
            "file_bytes_written": self.file_bytes_written,
            "spilled_records": self.spilled_records,
            "combine_input_records": self.combine_input_records,
            "combine_output_records": self.combine_output_records,
            "shuffle_bytes": self.shuffle_bytes,
        }


@dataclass
class TaskAttempt:
    """An executable unit handed to the simulation engine.

    :param task_id: Hadoop-style task identifier
        (e.g. ``task_202606140001_0007_m_000003``).
    :param task_type: map or reduce.
    :param phases: ordered work phases.
    :param counters: data-volume counters for the attempt.
    :param attempt_number: retry index (0 for the first attempt).
    """

    task_id: str
    task_type: TaskType
    phases: list[Phase]
    counters: TaskCounters = field(default_factory=TaskCounters)
    attempt_number: int = 0

    def __post_init__(self) -> None:
        if not self.phases:
            raise ConfigurationError("a task needs at least one phase")

    @property
    def nominal_duration(self) -> float:
        """Total nominal (uncontended) duration of all phases."""
        return sum(phase.nominal_seconds for phase in self.phases)

    def phase_seconds(self, name: str) -> float:
        """Total nominal seconds of phases with the given name."""
        return sum(p.nominal_seconds for p in self.phases if p.name == name)


def merge_passes(num_segments: int, io_sort_factor: int) -> int:
    """Number of on-disk merge passes needed to combine ``num_segments``.

    Hadoop's sorter merges at most ``io.sort.factor`` segments at a time, so
    combining ``s`` segments takes ``ceil(log_factor(s))`` passes (at least
    one whenever there is more than one segment).
    """
    if num_segments <= 1:
        return 0
    if io_sort_factor < 2:
        raise ConfigurationError("io_sort_factor must be >= 2")
    return max(1, math.ceil(math.log(num_segments, io_sort_factor)))
