"""Discrete-event MapReduce cluster simulator.

This package stands in for the Amazon EC2 + Hadoop substrate that the
PerfXplain paper collected its execution log from.  It models:

* HDFS-style block splitting of input datasets (:mod:`repro.cluster.hdfs`),
* virtual-machine instances with a fixed number of cores, map slots and
  reduce slots, plus background load (:mod:`repro.cluster.instance`),
* a slot-based FIFO scheduler that runs map tasks in waves followed by
  reduce tasks (:mod:`repro.cluster.scheduler`),
* a processor-sharing discrete-event engine that advances running tasks at a
  rate determined by per-instance contention (:mod:`repro.cluster.engine`;
  the frozen pre-event-core reference loop lives in
  :mod:`repro.cluster.engineref` and is pinned to the event core by a
  differential suite),
* fault injection — slow nodes and failing task attempts
  (:mod:`repro.cluster.faults`).

The engine produces :class:`~repro.cluster.engine.SimulationResult` objects
containing per-task and per-job timings and counters, plus a utilization
trace that the :mod:`repro.monitoring` package samples like Ganglia would.
"""

from repro.cluster.background import BackgroundLoadModel, BackgroundLoadProfile
from repro.cluster.config import MapReduceConfig
from repro.cluster.hdfs import Dataset, InputSplit, split_dataset
from repro.cluster.provisioning import InstanceType, INSTANCE_TYPES
from repro.cluster.instance import Instance
from repro.cluster.cluster import Cluster, ClusterSpec
from repro.cluster.tasks import Phase, PhaseKind, TaskAttempt, TaskType
from repro.cluster.jobs import JobSpec
from repro.cluster.faults import FaultModel
from repro.cluster.engine import (
    SimulationEngine,
    SimulationResult,
    TaskExecution,
    JobExecution,
)
from repro.cluster.engineref import ReferenceSimulationEngine
from repro.cluster.trace import UtilizationInterval, UtilizationTrace

__all__ = [
    "BackgroundLoadModel",
    "BackgroundLoadProfile",
    "MapReduceConfig",
    "Dataset",
    "InputSplit",
    "split_dataset",
    "InstanceType",
    "INSTANCE_TYPES",
    "Instance",
    "Cluster",
    "ClusterSpec",
    "Phase",
    "PhaseKind",
    "TaskAttempt",
    "TaskType",
    "JobSpec",
    "FaultModel",
    "SimulationEngine",
    "ReferenceSimulationEngine",
    "SimulationResult",
    "TaskExecution",
    "JobExecution",
    "UtilizationInterval",
    "UtilizationTrace",
]
