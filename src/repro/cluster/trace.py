"""Utilization traces produced by the simulation engine.

The engine records, for every instance, a sequence of half-open time
intervals during which the set of running tasks (and therefore CPU, disk and
network pressure) was constant.  The :mod:`repro.monitoring` package samples
these intervals every few seconds the way Ganglia samples ``/proc``.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field


@dataclass(frozen=True)
class UtilizationInterval:
    """Resource usage of one instance over ``[start, end)``.

    :param start: interval start time (seconds).
    :param end: interval end time (seconds).
    :param running_maps: number of map tasks running on the instance.
    :param running_reduces: number of reduce tasks running on the instance.
    :param cpu_demand: cores' worth of CPU demanded by tasks plus daemons.
    :param cpu_utilization: fraction of total CPU capacity in use (0-1).
    :param disk_read_mbps: disk read throughput.
    :param disk_write_mbps: disk write throughput.
    :param net_in_mbps: network ingress throughput.
    :param net_out_mbps: network egress throughput.
    :param memory_used_mb: memory used by tasks plus the OS baseline.
    :param background_load: CPU-equivalent background load during the interval.
    :param background_extra_procs: extra non-Hadoop processes running.
    """

    start: float
    end: float
    running_maps: int
    running_reduces: int
    cpu_demand: float
    cpu_utilization: float
    disk_read_mbps: float
    disk_write_mbps: float
    net_in_mbps: float
    net_out_mbps: float
    memory_used_mb: float
    background_load: float = 0.0
    background_extra_procs: int = 0

    @property
    def duration(self) -> float:
        """Length of the interval in seconds."""
        return self.end - self.start

    @property
    def running_tasks(self) -> int:
        """Total tasks running during the interval."""
        return self.running_maps + self.running_reduces


@dataclass
class UtilizationTrace:
    """Per-instance utilization intervals for one simulated job."""

    intervals: dict[int, list[UtilizationInterval]] = field(default_factory=dict)

    def add(self, instance_index: int, interval: UtilizationInterval) -> None:
        """Append an interval for an instance (intervals must be in order)."""
        self.intervals.setdefault(instance_index, []).append(interval)

    def for_instance(self, instance_index: int) -> list[UtilizationInterval]:
        """All intervals recorded for the given instance."""
        return self.intervals.get(instance_index, [])

    def instances(self) -> list[int]:
        """Indices of instances that have at least one interval."""
        return sorted(self.intervals)

    def end_time(self) -> float:
        """Latest interval end across all instances (0 if empty)."""
        latest = 0.0
        for intervals in self.intervals.values():
            if intervals:
                latest = max(latest, intervals[-1].end)
        return latest

    def at(self, instance_index: int, time: float) -> UtilizationInterval | None:
        """The interval covering ``time`` on the given instance, if any."""
        intervals = self.intervals.get(instance_index)
        if not intervals:
            return None
        starts = [interval.start for interval in intervals]
        position = bisect.bisect_right(starts, time) - 1
        if position < 0:
            return None
        interval = intervals[position]
        if interval.start <= time < interval.end:
            return interval
        return None
