"""Utilization traces produced by the simulation engine.

The engine records, for every instance, a sequence of half-open time
intervals during which the set of running tasks (and therefore CPU, disk and
network pressure) was constant.  The :mod:`repro.monitoring` package samples
these intervals every few seconds the way Ganglia samples ``/proc``.

Storage is columnar: the engine emits one plain tuple per interval
(:data:`INTERVAL_FIELDS` order) via :meth:`UtilizationTrace.add_row`, and the
hot consumers (the Ganglia sampler) read the raw rows directly.
:class:`UtilizationInterval` dataclass objects are materialised lazily —
only when :meth:`UtilizationTrace.for_instance` or
:meth:`UtilizationTrace.at` is called — which keeps the simulation loop free
of per-event dataclass construction for every instance in the cluster.
"""

from __future__ import annotations

import bisect
from dataclasses import astuple, dataclass


@dataclass(frozen=True)
class UtilizationInterval:
    """Resource usage of one instance over ``[start, end)``.

    :param start: interval start time (seconds).
    :param end: interval end time (seconds).
    :param running_maps: number of map tasks running on the instance.
    :param running_reduces: number of reduce tasks running on the instance.
    :param cpu_demand: cores' worth of CPU demanded by tasks plus daemons.
    :param cpu_utilization: fraction of total CPU capacity in use (0-1).
    :param disk_read_mbps: disk read throughput.
    :param disk_write_mbps: disk write throughput.
    :param net_in_mbps: network ingress throughput.
    :param net_out_mbps: network egress throughput.
    :param memory_used_mb: memory used by tasks plus the OS baseline.
    :param background_load: CPU-equivalent background load during the interval.
    :param background_extra_procs: extra non-Hadoop processes running.
    """

    start: float
    end: float
    running_maps: int
    running_reduces: int
    cpu_demand: float
    cpu_utilization: float
    disk_read_mbps: float
    disk_write_mbps: float
    net_in_mbps: float
    net_out_mbps: float
    memory_used_mb: float
    background_load: float = 0.0
    background_extra_procs: int = 0

    @property
    def duration(self) -> float:
        """Length of the interval in seconds."""
        return self.end - self.start

    @property
    def running_tasks(self) -> int:
        """Total tasks running during the interval."""
        return self.running_maps + self.running_reduces


#: Field order of the raw row tuples stored by :class:`UtilizationTrace`
#: (positional constructor order of :class:`UtilizationInterval`).
INTERVAL_FIELDS: tuple[str, ...] = (
    "start",
    "end",
    "running_maps",
    "running_reduces",
    "cpu_demand",
    "cpu_utilization",
    "disk_read_mbps",
    "disk_write_mbps",
    "net_in_mbps",
    "net_out_mbps",
    "memory_used_mb",
    "background_load",
    "background_extra_procs",
)

#: Row indexes of the fields the sampler reads, for readable tuple access.
ROW_START = 0
ROW_END = 1


class UtilizationTrace:
    """Per-instance utilization intervals for one simulated job.

    Rows are stored as plain tuples in :data:`INTERVAL_FIELDS` order;
    :class:`UtilizationInterval` objects are materialised on demand and
    cached per instance.
    """

    __slots__ = ("_rows", "_materialized")

    def __init__(self) -> None:
        self._rows: dict[int, list[tuple]] = {}
        #: instance index -> (row count at materialisation, interval list)
        self._materialized: dict[int, tuple[int, list[UtilizationInterval]]] = {}

    def add(self, instance_index: int, interval: UtilizationInterval) -> None:
        """Append an interval for an instance (intervals must be in order)."""
        self.add_row(instance_index, astuple(interval))

    def add_row(self, instance_index: int, row: tuple) -> None:
        """Append one raw interval row (:data:`INTERVAL_FIELDS` order)."""
        rows = self._rows.get(instance_index)
        if rows is None:
            rows = self._rows[instance_index] = []
        rows.append(row)

    def rows_for(self, instance_index: int) -> list[tuple]:
        """The raw rows of one instance (the sampler's fast path)."""
        return self._rows.get(instance_index, [])

    def for_instance(self, instance_index: int) -> list[UtilizationInterval]:
        """All intervals recorded for the given instance (materialised)."""
        rows = self._rows.get(instance_index)
        if rows is None:
            return []
        cached = self._materialized.get(instance_index)
        if cached is not None and cached[0] == len(rows):
            return cached[1]
        intervals = [UtilizationInterval(*row) for row in rows]
        self._materialized[instance_index] = (len(rows), intervals)
        return intervals

    def instances(self) -> list[int]:
        """Indices of instances that have at least one interval."""
        return sorted(index for index, rows in self._rows.items() if rows)

    def end_time(self) -> float:
        """Latest interval end across all instances (0 if empty)."""
        latest = 0.0
        for rows in self._rows.values():
            if rows:
                latest = max(latest, rows[-1][ROW_END])
        return latest

    def at(self, instance_index: int, time: float) -> UtilizationInterval | None:
        """The interval covering ``time`` on the given instance, if any."""
        intervals = self.for_instance(instance_index)
        if not intervals:
            return None
        starts = [interval.start for interval in intervals]
        position = bisect.bisect_right(starts, time) - 1
        if position < 0:
            return None
        interval = intervals[position]
        if interval.start <= time < interval.end:
            return interval
        return None
