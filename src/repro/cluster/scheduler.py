"""Slot-based FIFO task scheduler.

Hadoop's JobTracker hands map and reduce tasks to TaskTrackers as their
slots free up.  With the per-node slot counts fixed (two map and two reduce
slots per instance in the paper's cluster), map tasks execute in *waves*:
the first ``num_instances * map_slots`` tasks run concurrently, then the
next wave starts as slots free up, and so on.  The wave structure — and the
lighter load experienced by the final task on a node — is precisely what the
WhyLastTaskFaster query in the paper probes, so the scheduler reproduces it
faithfully.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.cluster.cluster import Cluster
from repro.cluster.config import MapReduceConfig
from repro.cluster.instance import Instance
from repro.cluster.tasks import TaskAttempt, TaskType
from repro.exceptions import SimulationError


@dataclass
class Assignment:
    """A task attempt assigned to an instance's slot."""

    instance: Instance
    attempt: TaskAttempt
    wave: int
    slot_order: int


class SlotScheduler:
    """FIFO scheduler over per-instance map and reduce slots.

    Reduce tasks are held back until the configured *slowstart* fraction of
    map tasks has completed (Hadoop's
    ``mapred.reduce.slowstart.completed.maps``; the simulator defaults to
    1.0 — reducers start only after every map has finished — which keeps the
    shuffle model simple while preserving the job-level runtime structure).
    """

    def __init__(
        self,
        cluster: Cluster,
        config: MapReduceConfig,
        map_tasks: list[TaskAttempt],
        reduce_tasks: list[TaskAttempt],
    ) -> None:
        self._cluster = cluster
        self._config = config
        self._pending_maps: deque[TaskAttempt] = deque(map_tasks)
        self._pending_reduces: deque[TaskAttempt] = deque(reduce_tasks)
        self._total_maps = len(map_tasks)
        self._completed_maps = 0
        self._completed_reduces = 0
        self._used_map_slots = {instance.index: 0 for instance in cluster}
        self._used_reduce_slots = {instance.index: 0 for instance in cluster}
        self._maps_started = {instance.index: 0 for instance in cluster}
        self._reduces_started = {instance.index: 0 for instance in cluster}
        self._slot_order = 0

    @property
    def completed_maps(self) -> int:
        """Number of map tasks that have finished."""
        return self._completed_maps

    @property
    def completed_reduces(self) -> int:
        """Number of reduce tasks that have finished."""
        return self._completed_reduces

    def has_pending(self) -> bool:
        """Whether any task is still waiting for a slot."""
        return bool(self._pending_maps) or bool(self._pending_reduces)

    def requeue(self, attempt: TaskAttempt) -> None:
        """Put a failed attempt back at the front of its queue."""
        if attempt.task_type is TaskType.MAP:
            self._pending_maps.appendleft(attempt)
        else:
            self._pending_reduces.appendleft(attempt)

    def _reducers_may_start(self) -> bool:
        if not self._pending_reduces:
            return False
        if self._total_maps == 0:
            return True
        needed = self._config.reduce_slowstart * self._total_maps
        return self._completed_maps >= needed

    def _free_map_slots(self, instance: Instance) -> int:
        used = self._used_map_slots[instance.index]
        return self._config.map_slots_per_instance - used

    def _free_reduce_slots(self, instance: Instance) -> int:
        used = self._used_reduce_slots[instance.index]
        return self._config.reduce_slots_per_instance - used

    def next_assignments(self) -> list[Assignment]:
        """Assign as many pending tasks as free slots allow, balanced.

        Tasks are handed to the instance with the most free slots of the
        relevant kind (ties broken by instance index), which mirrors how a
        lightly-loaded TaskTracker's heartbeat wins the next task.
        """
        assignments: list[Assignment] = []
        assignments.extend(self._assign_kind(TaskType.MAP))
        if self._reducers_may_start():
            assignments.extend(self._assign_kind(TaskType.REDUCE))
        return assignments

    def _assign_kind(self, task_type: TaskType) -> list[Assignment]:
        if task_type is TaskType.MAP:
            queue = self._pending_maps
            free = self._free_map_slots
            used = self._used_map_slots
            started = self._maps_started
            slots_per_instance = self._config.map_slots_per_instance
        else:
            queue = self._pending_reduces
            free = self._free_reduce_slots
            used = self._used_reduce_slots
            started = self._reduces_started
            slots_per_instance = self._config.reduce_slots_per_instance

        assignments: list[Assignment] = []
        while queue:
            candidates = [i for i in self._cluster if free(i) > 0]
            if not candidates:
                break
            instance = max(candidates, key=lambda i: (free(i), -i.index))
            attempt = queue.popleft()
            used[instance.index] += 1
            wave = started[instance.index] // slots_per_instance
            started[instance.index] += 1
            assignments.append(
                Assignment(
                    instance=instance,
                    attempt=attempt,
                    wave=wave,
                    slot_order=self._slot_order,
                )
            )
            self._slot_order += 1
        return assignments

    def release(self, instance: Instance, attempt: TaskAttempt, completed: bool) -> None:
        """Free the slot held by an attempt; count it if it completed."""
        if attempt.task_type is TaskType.MAP:
            used = self._used_map_slots
        else:
            used = self._used_reduce_slots
        if used[instance.index] <= 0:
            raise SimulationError(
                f"released a {attempt.task_type.value} slot on instance "
                f"{instance.index} that was not in use"
            )
        used[instance.index] -= 1
        if completed:
            if attempt.task_type is TaskType.MAP:
                self._completed_maps += 1
            else:
                self._completed_reduces += 1
