"""Cluster construction: a named collection of instances.

A :class:`ClusterSpec` describes the fleet (how many instances, of which
type, with what health variance); :func:`ClusterSpec.provision` materialises
:class:`~repro.cluster.instance.Instance` objects, optionally using a random
generator to perturb per-node speed (mirroring the runtime variance the
paper observed on EC2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.cluster.background import (
    DEFAULT_BACKGROUND_MODEL,
    BackgroundLoadModel,
)
from repro.cluster.instance import Instance
from repro.cluster.provisioning import DEFAULT_INSTANCE_TYPE, InstanceType, get_instance_type
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class ClusterSpec:
    """Declarative description of a cluster to provision.

    :param num_instances: number of virtual machines.
    :param instance_type: hardware type for every machine (homogeneous, as in
        the paper), either an :class:`InstanceType` or a type name.
    :param speed_jitter: standard deviation of per-node speed variation.
        EC2 nodes of the same type do not perform identically; a value of
        0.05 gives roughly +/-5 percent node-to-node variance.
    :param background_procs: CPU-equivalent daemon load per node, used when
        ``background_model`` is ``None``.
    :param background_model: time-varying background-load model (EC2 noisy
        neighbours); set to ``None`` for a perfectly quiet cluster.
    """

    num_instances: int
    instance_type: InstanceType | str = DEFAULT_INSTANCE_TYPE
    speed_jitter: float = 0.05
    background_procs: float = 0.25
    background_model: BackgroundLoadModel | None = DEFAULT_BACKGROUND_MODEL

    def __post_init__(self) -> None:
        if self.num_instances < 1:
            raise ConfigurationError("num_instances must be >= 1")
        if self.speed_jitter < 0:
            raise ConfigurationError("speed_jitter must be >= 0")

    def resolved_type(self) -> InstanceType:
        """Return the instance type object (resolving a name if needed)."""
        if isinstance(self.instance_type, str):
            return get_instance_type(self.instance_type)
        return self.instance_type

    def provision(self, rng: random.Random | None = None) -> "Cluster":
        """Create the cluster, optionally jittering per-node speed."""
        rng = rng if rng is not None else random.Random(0)
        itype = self.resolved_type()
        instances = []
        for index in range(self.num_instances):
            jitter = rng.gauss(0.0, self.speed_jitter) if self.speed_jitter else 0.0
            speed = max(0.3, 1.0 + jitter)
            profile = (
                self.background_model.generate(rng)
                if self.background_model is not None
                else None
            )
            instances.append(
                Instance(
                    index=index,
                    instance_type=itype,
                    background_procs=self.background_procs,
                    speed_factor=speed,
                    boot_time=-rng.uniform(3600.0, 48 * 3600.0),
                    load_profile=profile,
                )
            )
        return Cluster(instances=instances)


@dataclass
class Cluster:
    """A provisioned cluster: an ordered list of instances."""

    instances: list[Instance]

    def __post_init__(self) -> None:
        if not self.instances:
            raise ConfigurationError("a cluster needs at least one instance")

    def __len__(self) -> int:
        return len(self.instances)

    def __iter__(self) -> Iterator[Instance]:
        return iter(self.instances)

    def __getitem__(self, index: int) -> Instance:
        return self.instances[index]

    @property
    def num_instances(self) -> int:
        """Number of instances in the cluster."""
        return len(self.instances)

    @property
    def total_cores(self) -> int:
        """Total number of CPU cores across the cluster."""
        return sum(instance.cores for instance in self.instances)

    def total_map_slots(self, slots_per_instance: int) -> int:
        """Total concurrent map tasks the cluster can run."""
        return slots_per_instance * self.num_instances

    def total_reduce_slots(self, slots_per_instance: int) -> int:
        """Total concurrent reduce tasks the cluster can run."""
        return slots_per_instance * self.num_instances

    def hostnames(self) -> list[str]:
        """Hostnames of all instances, in index order."""
        return [instance.hostname for instance in self.instances]
