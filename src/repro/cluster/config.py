"""Hadoop-style MapReduce configuration.

The PerfXplain evaluation varied three Hadoop parameters directly
(``dfs.block.size``, ``mapred.reduce.tasks``, ``io.sort.factor``); this module
models those plus the handful of additional knobs the simulator needs
(slots per instance, speculative execution, task retry limits).  The class
can round-trip to the dotted Hadoop property-name form so that the log
writer can embed a realistic looking job configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.exceptions import ConfigurationError
from repro.units import MB, parse_size

#: Mapping from Hadoop property names to MapReduceConfig attribute names.
HADOOP_PROPERTY_MAP: dict[str, str] = {
    "dfs.block.size": "dfs_block_size",
    "mapred.reduce.tasks": "num_reduce_tasks",
    "io.sort.factor": "io_sort_factor",
    "io.sort.mb": "io_sort_mb",
    "mapred.tasktracker.map.tasks.maximum": "map_slots_per_instance",
    "mapred.tasktracker.reduce.tasks.maximum": "reduce_slots_per_instance",
    "mapred.map.tasks.speculative.execution": "speculative_execution",
    "mapred.map.max.attempts": "max_task_attempts",
    "mapred.child.java.opts.mb": "task_memory_mb",
    "mapred.reduce.slowstart.completed.maps": "reduce_slowstart",
}


@dataclass(frozen=True)
class MapReduceConfig:
    """Configuration of a single MapReduce job execution.

    Attributes mirror the Hadoop parameters the paper varies (Table 2) plus
    the fixed cluster-side settings that influence simulated runtimes.
    """

    #: HDFS block size in bytes; determines the number of map tasks.
    dfs_block_size: int = 128 * MB
    #: Number of reduce tasks for the job.
    num_reduce_tasks: int = 1
    #: Number of on-disk segments merged at once during the sort phase.
    io_sort_factor: int = 10
    #: Size of the in-memory map-output sort buffer, in megabytes.
    io_sort_mb: int = 100
    #: Concurrent map tasks per instance (the paper's machines had two).
    map_slots_per_instance: int = 2
    #: Concurrent reduce tasks per instance.
    reduce_slots_per_instance: int = 2
    #: Whether speculative (backup) task attempts are launched.
    speculative_execution: bool = False
    #: Maximum attempts per task before the job is declared failed.
    max_task_attempts: int = 4
    #: Memory allotted to each task JVM, in megabytes.
    task_memory_mb: int = 200
    #: Fraction of map tasks that must finish before reducers may start.
    reduce_slowstart: float = 1.0

    def __post_init__(self) -> None:
        if self.dfs_block_size <= 0:
            raise ConfigurationError("dfs_block_size must be positive")
        if self.num_reduce_tasks < 0:
            raise ConfigurationError("num_reduce_tasks must be >= 0")
        if self.io_sort_factor < 2:
            raise ConfigurationError("io_sort_factor must be >= 2")
        if self.io_sort_mb <= 0:
            raise ConfigurationError("io_sort_mb must be positive")
        if self.map_slots_per_instance < 1:
            raise ConfigurationError("map_slots_per_instance must be >= 1")
        if self.reduce_slots_per_instance < 1:
            raise ConfigurationError("reduce_slots_per_instance must be >= 1")
        if self.max_task_attempts < 1:
            raise ConfigurationError("max_task_attempts must be >= 1")
        if self.task_memory_mb <= 0:
            raise ConfigurationError("task_memory_mb must be positive")
        if not 0.0 <= self.reduce_slowstart <= 1.0:
            raise ConfigurationError("reduce_slowstart must be in [0, 1]")

    def with_overrides(self, **overrides: Any) -> "MapReduceConfig":
        """Return a copy with the given attributes replaced."""
        return replace(self, **overrides)

    def to_hadoop_properties(self) -> dict[str, str]:
        """Render the configuration as dotted Hadoop property names."""
        properties: dict[str, str] = {}
        for prop, attr in HADOOP_PROPERTY_MAP.items():
            value = getattr(self, attr)
            if isinstance(value, bool):
                properties[prop] = "true" if value else "false"
            else:
                properties[prop] = str(value)
        return properties

    @classmethod
    def from_hadoop_properties(
        cls, properties: Mapping[str, Any], base: "MapReduceConfig" | None = None
    ) -> "MapReduceConfig":
        """Build a configuration from a Hadoop property mapping.

        Unknown properties are ignored so that real ``job.xml`` dumps with
        hundreds of entries can be passed straight through.
        """
        values: dict[str, Any] = {}
        for prop, raw in properties.items():
            attr = HADOOP_PROPERTY_MAP.get(prop)
            if attr is None:
                continue
            values[attr] = _coerce(attr, raw)
        config = base if base is not None else cls()
        return config.with_overrides(**values)


def _coerce(attr: str, raw: Any) -> Any:
    """Coerce a raw property value to the type of the config attribute."""
    if attr == "dfs_block_size":
        return parse_size(raw)
    if attr == "speculative_execution":
        if isinstance(raw, bool):
            return raw
        return str(raw).strip().lower() in {"true", "1", "yes"}
    if attr == "reduce_slowstart":
        return float(raw)
    return int(float(raw))
