"""Processor-sharing discrete-event simulation engine (event core).

The engine advances all running task attempts simultaneously.  Between
events every attempt progresses through its current phase at a rate set by
the contention on its instance (CPU demand vs. cores, disk sharing, network
sharing, plus a memory-bandwidth penalty for co-located tasks).  Events are
phase completions; at each event the engine re-schedules freed slots and
recomputes rates.  This is the standard way to simulate slot-based
MapReduce execution and it reproduces the performance patterns the paper's
queries ask about:

* runtimes grow in steps as the number of map *waves* grows (block size /
  input size / cluster size interplay — the paper's motivating scenario);
* the last task on an instance runs faster because it no longer shares the
  machine (the WhyLastTaskFaster query);
* degraded nodes and background load create variance between otherwise
  identical jobs.

**Event core.**  An attempt's rate depends only on the set of phase kinds
running on *its* instance and on that instance's background load, so rates
are cached per instance and recomputed only when one of those inputs
actually changes: a task starts, finishes, fails or crosses a phase
boundary on the instance, or the simulation clock reaches the instance's
next background-load episode.  The original loop — which called
``_task_speed`` for every running attempt at every event, each call
scanning the whole running list for co-located attempts — is preserved
verbatim in :mod:`repro.cluster.engineref`; the differential suite
(``tests/cluster/test_engine_equivalence.py``) proves both engines emit
bit-identical task records, phase timings and utilization traces.
Background-load episodes are tracked with monotonic cursors (the clock
never goes backwards within a run) instead of per-query bisection, and the
utilization trace is emitted as raw columnar rows
(:meth:`~repro.cluster.trace.UtilizationTrace.add_row`) rather than one
dataclass instance per instance per event.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

from repro.cluster.cluster import Cluster
from repro.cluster.config import MapReduceConfig
from repro.cluster.faults import NO_FAULTS, FaultModel
from repro.cluster.instance import Instance
from repro.cluster.jobs import JobSpec
from repro.cluster.scheduler import SlotScheduler
from repro.cluster.tasks import Phase, PhaseKind, TaskAttempt, TaskType
from repro.cluster.trace import UtilizationTrace
from repro.exceptions import SimulationError

_EPSILON = 1e-9

#: CPU-equivalent demand of a task whose current phase stresses each resource.
_CPU_WEIGHT = {
    PhaseKind.CPU: 1.0,
    PhaseKind.DISK: 0.25,
    PhaseKind.NETWORK: 0.15,
    PhaseKind.OVERHEAD: 0.3,
}

#: Per-extra-co-located-task slowdown from shared memory bandwidth and cache.
_COLOCATION_PENALTY = 0.12

#: Megabytes of RAM the OS and Hadoop daemons occupy on every node.
_OS_MEMORY_MB = 600.0

_INF = float("inf")


@dataclass
class TaskExecution:
    """The observed execution of one task (possibly after retries)."""

    task_id: str
    job_id: str
    task_type: TaskType
    instance_index: int
    hostname: str
    tracker_name: str
    start_time: float
    finish_time: float
    wave: int
    slot_order: int
    phase_wall_seconds: dict[str, float]
    counters: dict[str, int]
    attempts: int = 1

    @property
    def duration(self) -> float:
        """Wall-clock duration including any failed attempts."""
        return self.finish_time - self.start_time

    def phase_seconds(self, name: str) -> float:
        """Wall-clock seconds spent in phases with the given name."""
        return self.phase_wall_seconds.get(name, 0.0)


@dataclass
class JobExecution:
    """The observed execution of one job."""

    job_id: str
    name: str
    submit_time: float
    start_time: float
    finish_time: float
    num_map_tasks: int
    num_reduce_tasks: int
    num_instances: int
    config: MapReduceConfig
    metadata: dict[str, Any]
    counters: dict[str, int]

    @property
    def duration(self) -> float:
        """Wall-clock duration of the job."""
        return self.finish_time - self.start_time


@dataclass
class SimulationResult:
    """Everything the simulator observed while running one job.

    ``engine_seed`` and ``scenario`` are provenance stamps: the workload
    runner records the seed that derived every random draw of the run and
    the scenario identifier (when the job was produced by a
    :mod:`repro.workloads.scenarios` catalog entry), so any emitted log
    record can be traced back to a reproducible ``(scenario, seed)`` replay.
    """

    job: JobExecution
    tasks: list[TaskExecution]
    trace: UtilizationTrace
    cluster: Cluster
    engine_seed: int | None = None
    scenario: str | None = None

    def map_tasks(self) -> list[TaskExecution]:
        """Task executions of type MAP."""
        return [t for t in self.tasks if t.task_type is TaskType.MAP]

    def reduce_tasks(self) -> list[TaskExecution]:
        """Task executions of type REDUCE."""
        return [t for t in self.tasks if t.task_type is TaskType.REDUCE]


class _RunningTask:
    """Book-keeping for an attempt currently holding a slot.

    Beyond the reference engine's fields this caches everything the hot
    loop reads per event: the current phase kind and name, the attempt's
    total nominal duration, the most recently computed rate, and a back
    reference to the owning :class:`_InstanceState`.
    """

    __slots__ = (
        "attempt",
        "instance",
        "start_time",
        "wave",
        "slot_order",
        "phase_index",
        "remaining_in_phase",
        "phase_wall_seconds",
        "work_done",
        "failure_at",
        "prior_attempts",
        "prior_wall_seconds",
        "original_start",
        "kind",
        "phase_name",
        "total_nominal",
        "is_map",
        "speed",
        "alive",
        "state",
    )

    def __init__(
        self,
        attempt: TaskAttempt,
        instance: Instance,
        start_time: float,
        wave: int,
        slot_order: int,
        prior_attempts: int,
        prior_wall_seconds: dict[str, float],
        original_start: float | None,
    ) -> None:
        self.attempt = attempt
        self.instance = instance
        self.start_time = start_time
        self.wave = wave
        self.slot_order = slot_order
        self.phase_index = 0
        first = attempt.phases[0]
        self.remaining_in_phase = first.nominal_seconds
        self.phase_wall_seconds: dict[str, float] = {}
        self.work_done = 0.0
        self.failure_at: float | None = None
        self.prior_attempts = prior_attempts
        self.prior_wall_seconds = prior_wall_seconds
        self.original_start = original_start
        self.kind = first.kind
        self.phase_name = first.name
        self.total_nominal = attempt.nominal_duration
        self.is_map = attempt.task_type is TaskType.MAP
        self.speed = 0.0
        self.alive = True
        self.state: _InstanceState | None = None

    def advance_phase(self) -> bool:
        """Move to the next phase; returns True when the attempt is done."""
        self.phase_index += 1
        phases = self.attempt.phases
        if self.phase_index >= len(phases):
            return True
        phase = phases[self.phase_index]
        self.remaining_in_phase = phase.nominal_seconds
        self.phase_name = phase.name
        if phase.kind is not self.kind:
            self.kind = phase.kind
            state = self.state
            if state is not None:
                state.dirty = True
        return False


class _InstanceState:
    """Per-instance event-core state: members, cached rates, load cursor.

    ``dirty`` marks that the member set or some member's phase kind changed
    since the cached rates were computed; the background cursor tracks the
    instance's piecewise-constant load episode under the run's monotonic
    clock, so ``bg_boundary`` is both the cache's expiry time and the
    reference loop's step clamp (``next_background_change``).
    """

    __slots__ = (
        "instance",
        "index",
        "members",
        "dirty",
        "cursor",
        "background",
        "extra_procs",
        "bg_boundary",
        "cores",
        "core_speed",
        "speed_factor",
        "disk_mbps",
        "net_mbps",
        "cpu_demand",
        "disk_users",
        "net_users",
        "running_maps",
    )

    def __init__(self, instance: Instance, clock: float) -> None:
        self.instance = instance
        self.index = instance.index
        self.members: list[_RunningTask] = []
        self.dirty = False
        profile = instance.load_profile
        self.cursor = profile.cursor() if profile is not None else None
        self.cores = instance.cores
        self.core_speed = instance.effective_core_speed()
        self.speed_factor = instance.speed_factor
        self.disk_mbps = instance.instance_type.disk_mbps
        self.net_mbps = instance.instance_type.network_mbps
        self.cpu_demand = 0.0
        self.disk_users = 0
        self.net_users = 0
        self.running_maps = 0
        if self.cursor is None:
            self.background = instance.background_procs
            self.extra_procs = 0
            self.bg_boundary = _INF
        else:
            self.advance_background(clock)

    def advance_background(self, clock: float) -> None:
        """Move the load cursor forward to the episode covering ``clock``."""
        cursor = self.cursor
        if cursor is None:
            return
        self.background, self.extra_procs = cursor.at(clock)
        self.bg_boundary = cursor.next_change_after(clock)

    def refresh_rates(self, clock: float) -> None:
        """Recompute cached member rates (reference-loop arithmetic)."""
        if clock >= self.bg_boundary:
            self.advance_background(clock)
        members = self.members
        cpu_demand = self.background + sum(_CPU_WEIGHT[t.kind] for t in members)
        cpu_factor = min(1.0, self.cores / max(cpu_demand, _EPSILON))
        colocation_factor = 1.0 / (
            1.0 + _COLOCATION_PENALTY * max(0, len(members) - 1)
        )
        disk_users = 0
        net_users = 0
        running_maps = 0
        for task in members:
            kind = task.kind
            if kind is PhaseKind.DISK:
                disk_users += 1
            elif kind is PhaseKind.NETWORK:
                net_users += 1
            if task.is_map:
                running_maps += 1
        cpu_speed = self.core_speed * cpu_factor * colocation_factor
        disk_speed = self.speed_factor * colocation_factor / max(1, disk_users)
        net_speed = 1.0 / max(1, net_users)
        overhead_speed = self.speed_factor
        for task in members:
            kind = task.kind
            if kind is PhaseKind.CPU:
                task.speed = cpu_speed
            elif kind is PhaseKind.DISK:
                task.speed = disk_speed
            elif kind is PhaseKind.NETWORK:
                task.speed = net_speed
            else:
                task.speed = overhead_speed
        self.cpu_demand = cpu_demand
        self.disk_users = disk_users
        self.net_users = net_users
        self.running_maps = running_maps
        self.dirty = False


class SimulationEngine:
    """Runs :class:`JobSpec` objects on a :class:`Cluster`."""

    def __init__(
        self,
        cluster: Cluster,
        fault_model: FaultModel = NO_FAULTS,
        rng: random.Random | None = None,
        jitter: float = 0.03,
    ) -> None:
        """
        :param cluster: the provisioned cluster to run on.
        :param fault_model: probabilistic fault injection.
        :param rng: random generator driving faults and runtime jitter.
        :param jitter: multiplicative noise applied to each phase duration
            (models OS scheduling and I/O variance on real machines).
        """
        self._cluster = cluster
        self._faults = fault_model
        self._rng = rng if rng is not None else random.Random(0)
        self._jitter = jitter

    def run(self, job: JobSpec, start_time: float | None = None) -> SimulationResult:
        """Simulate a job and return its execution record.

        :param job: the job specification to run.
        :param start_time: wall-clock start; defaults to the job submit time.
        """
        clock = job.submit_time if start_time is None else start_time
        cluster = self._cluster
        scheduler = SlotScheduler(cluster, job.config, job.map_tasks, job.reduce_tasks)
        trace = UtilizationTrace()
        add_row = trace.add_row
        running: list[_RunningTask] = []
        finished: list[TaskExecution] = []
        failure_memory: dict[str, tuple[int, dict[str, float], float]] = {}
        job_start = clock
        states = {
            instance.index: _InstanceState(instance, clock) for instance in cluster
        }
        #: States in cluster order, for trace emission.
        state_list = [states[instance.index] for instance in cluster]
        num_instances = max(1, len(cluster))
        half_epsilon = _EPSILON / 2
        need_schedule = True

        while scheduler.has_pending() or running:
            if need_schedule:
                for assignment in scheduler.next_assignments():
                    task = self._start_attempt(
                        assignment.attempt, assignment.instance, clock,
                        assignment.wave, assignment.slot_order, failure_memory,
                    )
                    state = states[assignment.instance.index]
                    task.state = state
                    state.members.append(task)
                    state.dirty = True
                    running.append(task)
                need_schedule = False
            if not running:
                raise SimulationError(
                    "no task could be scheduled although work remains; "
                    "check slot configuration"
                )

            # Busy instances in first-occurrence order of the running list
            # (the reference loop's ``by_instance`` key order, which fixes
            # the floating-point summation order of the trace's net totals).
            busy: list[_InstanceState] = []
            seen: set[int] = set()
            for task in running:
                index = task.state.index  # type: ignore[union-attr]
                if index not in seen:
                    seen.add(index)
                    busy.append(task.state)  # type: ignore[arg-type]

            # Incremental rate recomputation: only instances whose member
            # set, member phase kinds or background episode changed.
            for state in busy:
                if state.dirty or clock >= state.bg_boundary:
                    state.refresh_rates(clock)

            step = _INF
            for task in running:
                speed = task.speed
                bound = task.remaining_in_phase / (
                    speed if speed > _EPSILON else _EPSILON
                )
                if bound < step:
                    step = bound
            # Background load changes create rate changes too: never step
            # past the next episode boundary of any busy instance.
            for state in busy:
                boundary = state.bg_boundary
                if boundary > clock:
                    gap = boundary - clock
                    if gap < step:
                        step = gap
            step = max(step, _EPSILON)

            # Columnar trace emission: one raw row per instance per event.
            end = clock + step
            if end - clock > half_epsilon:
                total_net_in = 0.0
                for state in busy:
                    total_net_in += state.net_mbps * min(1, state.net_users)
                net_out = total_net_in / num_instances
                for state in state_list:
                    if clock >= state.bg_boundary:
                        state.advance_background(clock)
                    background = state.background
                    members = state.members
                    if members:
                        count = len(members)
                        cpu_demand = state.cpu_demand
                        disk_users = state.disk_users
                        net_users = state.net_users
                        running_maps = state.running_maps
                    else:
                        count = 0
                        cpu_demand = background
                        disk_users = 0
                        net_users = 0
                        running_maps = 0
                    disk_rate = state.disk_mbps if disk_users else 0.0
                    add_row(
                        state.index,
                        (
                            clock,
                            end,
                            running_maps,
                            count - running_maps,
                            cpu_demand,
                            min(1.0, cpu_demand / state.cores),
                            disk_rate * 0.6,
                            disk_rate * 0.4,
                            state.net_mbps if net_users else 0.0,
                            net_out,
                            _OS_MEMORY_MB + count * 200.0 + background * 400.0,
                            background,
                            state.extra_procs,
                        ),
                    )

            for task in running:
                progress = step * task.speed
                task.remaining_in_phase -= progress
                task.work_done += progress
                name = task.phase_name
                wall = task.phase_wall_seconds
                wall[name] = wall.get(name, 0.0) + step

            clock = end

            removed = False
            still_running: list[_RunningTask] = []
            for task in running:
                if task.remaining_in_phase > _EPSILON and task.speed <= _EPSILON:
                    raise SimulationError(
                        f"task {task.attempt.task_id} is not making progress"
                    )
                failed = (
                    task.failure_at is not None
                    and task.work_done >= task.failure_at * task.total_nominal
                )
                if failed:
                    scheduler.release(task.instance, task.attempt, completed=False)
                    failure_memory[task.attempt.task_id] = (
                        task.prior_attempts + 1,
                        _merge_wall(task.prior_wall_seconds, task.phase_wall_seconds),
                        task.original_start
                        if task.original_start is not None
                        else task.start_time,
                    )
                    scheduler.requeue(task.attempt)
                    task.alive = False
                    task.state.dirty = True  # type: ignore[union-attr]
                    removed = True
                    need_schedule = True
                    continue
                if task.remaining_in_phase <= _EPSILON:
                    if task.advance_phase():
                        scheduler.release(task.instance, task.attempt, completed=True)
                        finished.append(self._finish_task(task, job.job_id, clock))
                        task.alive = False
                        task.state.dirty = True  # type: ignore[union-attr]
                        removed = True
                        need_schedule = True
                        continue
                still_running.append(task)
            running = still_running
            if removed:
                for state in busy:
                    if state.dirty:
                        state.members = [t for t in state.members if t.alive]

        job_execution = self._summarise_job(job, job_start, clock, finished)
        finished.sort(
            key=lambda execution: (execution.task_type.value, execution.task_id)
        )
        return SimulationResult(
            job=job_execution, tasks=finished, trace=trace, cluster=self._cluster
        )

    # ------------------------------------------------------------------ #
    # internal helpers
    # ------------------------------------------------------------------ #

    def _start_attempt(
        self,
        attempt: TaskAttempt,
        instance: Instance,
        clock: float,
        wave: int,
        slot_order: int,
        failure_memory: dict[str, tuple[int, dict[str, float], float]],
    ) -> _RunningTask:
        prior_attempts, prior_wall, original_start = failure_memory.pop(
            attempt.task_id, (0, {}, clock)
        )
        jittered = []
        for phase in attempt.phases:
            noise = 1.0 + self._rng.gauss(0.0, self._jitter) if self._jitter else 1.0
            jittered.append(
                Phase(
                    phase.name,
                    max(0.0, phase.nominal_seconds * max(0.2, noise)),
                    phase.kind,
                )
            )
        task = _RunningTask(
            attempt=TaskAttempt(
                task_id=attempt.task_id,
                task_type=attempt.task_type,
                phases=jittered,
                counters=attempt.counters,
                attempt_number=prior_attempts,
            ),
            instance=instance,
            start_time=clock,
            wave=wave,
            slot_order=slot_order,
            prior_attempts=prior_attempts,
            prior_wall_seconds=prior_wall,
            original_start=original_start if prior_attempts else clock,
        )
        if self._faults.enabled and prior_attempts < 1:
            # Only one injected failure per task.
            task.failure_at = self._faults.draw_failure(self._rng)
        return task

    def _finish_task(
        self, task: _RunningTask, job_id: str, clock: float
    ) -> TaskExecution:
        wall = _merge_wall(task.prior_wall_seconds, task.phase_wall_seconds)
        start = (
            task.original_start if task.original_start is not None else task.start_time
        )
        return TaskExecution(
            task_id=task.attempt.task_id,
            job_id=job_id,
            task_type=task.attempt.task_type,
            instance_index=task.instance.index,
            hostname=task.instance.hostname,
            tracker_name=task.instance.tracker_name,
            start_time=start,
            finish_time=clock,
            wave=task.wave,
            slot_order=task.slot_order,
            phase_wall_seconds=wall,
            counters=task.attempt.counters.as_dict(),
            attempts=task.prior_attempts + 1,
        )

    def _summarise_job(
        self,
        job: JobSpec,
        start: float,
        finish: float,
        tasks: list[TaskExecution],
    ) -> JobExecution:
        counters: dict[str, int] = {}
        for execution in tasks:
            for key, value in execution.counters.items():
                counters[key] = counters.get(key, 0) + value
        return JobExecution(
            job_id=job.job_id,
            name=job.name,
            submit_time=job.submit_time,
            start_time=start,
            finish_time=finish,
            num_map_tasks=job.num_map_tasks,
            num_reduce_tasks=job.num_reduce_tasks,
            num_instances=len(self._cluster),
            config=job.config,
            metadata=dict(job.metadata),
            counters=counters,
        )


def _merge_wall(base: dict[str, float], extra: dict[str, float]) -> dict[str, float]:
    """Sum two phase-name -> wall-seconds dictionaries."""
    merged = dict(base)
    for name, seconds in extra.items():
        merged[name] = merged.get(name, 0.0) + seconds
    return merged
