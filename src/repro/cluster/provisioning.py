"""Instance types for the simulated cluster.

The paper used a homogeneous EC2 cluster where every machine could run two
concurrent map tasks and two concurrent reduce tasks.  We model a small
catalogue of EC2-like instance types so that experiments beyond the paper
(heterogeneous clusters, bigger nodes) are possible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class InstanceType:
    """Hardware description of a virtual machine type.

    :param name: EC2-style type name.
    :param cores: number of CPU cores.
    :param cpu_speed: relative per-core speed (1.0 == the paper's machines).
    :param memory_mb: RAM in megabytes.
    :param disk_mbps: sequential disk bandwidth in MB/s.
    :param network_mbps: network bandwidth in MB/s.
    """

    name: str
    cores: int
    cpu_speed: float
    memory_mb: int
    disk_mbps: float
    network_mbps: float

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ConfigurationError("cores must be >= 1")
        if self.cpu_speed <= 0:
            raise ConfigurationError("cpu_speed must be positive")
        if self.memory_mb <= 0:
            raise ConfigurationError("memory_mb must be positive")
        if self.disk_mbps <= 0:
            raise ConfigurationError("disk_mbps must be positive")
        if self.network_mbps <= 0:
            raise ConfigurationError("network_mbps must be positive")


#: Catalogue of known instance types, keyed by name.
INSTANCE_TYPES: dict[str, InstanceType] = {
    "m1.small": InstanceType(
        name="m1.small", cores=1, cpu_speed=0.5, memory_mb=1700,
        disk_mbps=50.0, network_mbps=30.0,
    ),
    "m1.large": InstanceType(
        name="m1.large", cores=2, cpu_speed=1.0, memory_mb=7500,
        disk_mbps=80.0, network_mbps=60.0,
    ),
    "m1.xlarge": InstanceType(
        name="m1.xlarge", cores=4, cpu_speed=1.0, memory_mb=15000,
        disk_mbps=120.0, network_mbps=100.0,
    ),
    "c1.medium": InstanceType(
        name="c1.medium", cores=2, cpu_speed=1.25, memory_mb=1700,
        disk_mbps=80.0, network_mbps=60.0,
    ),
}

#: The instance type used by default for all experiments (2 cores, like the
#: machines in the paper where each node had two map and two reduce slots).
DEFAULT_INSTANCE_TYPE = INSTANCE_TYPES["m1.large"]


def get_instance_type(name: str) -> InstanceType:
    """Look up an instance type by name.

    :raises ConfigurationError: if the name is unknown.
    """
    try:
        return INSTANCE_TYPES[name]
    except KeyError as exc:
        known = ", ".join(sorted(INSTANCE_TYPES))
        raise ConfigurationError(
            f"unknown instance type {name!r}; known types: {known}"
        ) from exc
