"""A single simulated virtual machine.

Each instance has a fixed hardware description (:class:`InstanceType`),
a hostname / tracker name that shows up in task logs, a background load
representing OS daemons and the Hadoop TaskTracker/DataNode processes, and a
speed factor that fault injection can lower to model a slow node.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.background import BackgroundLoadProfile
from repro.cluster.provisioning import DEFAULT_INSTANCE_TYPE, InstanceType
from repro.exceptions import ConfigurationError


@dataclass
class Instance:
    """A virtual machine in the simulated cluster.

    :param index: zero-based index within the cluster.
    :param instance_type: hardware description.
    :param background_procs: CPU-equivalent load from daemons (cores used)
        when no time-varying load profile is attached.
    :param base_proc_count: number of OS/daemon processes reported by
        monitoring when the node is otherwise idle.
    :param speed_factor: multiplicative slowdown for a degraded node
        (1.0 = healthy, 0.5 = runs at half speed).
    :param boot_time: wall-clock boot timestamp reported by monitoring.
    :param load_profile: optional time-varying background load (EC2 noisy
        neighbours, daemon bursts); when present it overrides
        ``background_procs``.
    """

    index: int
    instance_type: InstanceType = DEFAULT_INSTANCE_TYPE
    background_procs: float = 0.25
    base_proc_count: int = 95
    speed_factor: float = 1.0
    boot_time: float = 0.0
    load_profile: BackgroundLoadProfile | None = None

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ConfigurationError("instance index must be >= 0")
        if self.background_procs < 0:
            raise ConfigurationError("background_procs must be >= 0")
        if self.speed_factor <= 0:
            raise ConfigurationError("speed_factor must be positive")

    @property
    def hostname(self) -> str:
        """EC2-style internal hostname."""
        return f"ip-10-0-{self.index // 256}-{self.index % 256}.ec2.internal"

    @property
    def tracker_name(self) -> str:
        """Hadoop TaskTracker identifier for this node."""
        return f"tracker_{self.hostname}:localhost/127.0.0.1:{50060 + self.index}"

    @property
    def cores(self) -> int:
        """Number of CPU cores."""
        return self.instance_type.cores

    @property
    def memory_mb(self) -> int:
        """RAM in megabytes."""
        return self.instance_type.memory_mb

    def effective_core_speed(self) -> float:
        """Per-core speed after applying the health factor."""
        return self.instance_type.cpu_speed * self.speed_factor

    def background_at(self, time: float) -> float:
        """CPU-equivalent background load at a point in (simulation) time."""
        if self.load_profile is not None:
            return self.load_profile.load_at(time)
        return self.background_procs

    def extra_procs_at(self, time: float) -> int:
        """Extra non-Hadoop processes running at a point in time."""
        if self.load_profile is not None:
            return self.load_profile.procs_at(time)
        return 0

    def next_background_change(self, time: float) -> float:
        """Next time the background load changes (inf when constant)."""
        if self.load_profile is not None:
            return self.load_profile.next_change_after(time)
        return float("inf")
