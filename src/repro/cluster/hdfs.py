"""HDFS-style datasets and block splitting.

The number of map tasks of a Hadoop job equals the number of input splits,
which (for the workloads in the paper) is the input file size divided by the
DFS block size.  This module models exactly that relationship.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class Dataset:
    """A file stored in the simulated distributed file system.

    :param name: path-like identifier (e.g. ``"excite-30x.log"``).
    :param size_bytes: total file size.
    :param num_records: number of records in the file.
    :param replication: HDFS replication factor (informational only).
    """

    name: str
    size_bytes: int
    num_records: int
    replication: int = 3

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ConfigurationError("dataset size_bytes must be positive")
        if self.num_records <= 0:
            raise ConfigurationError("dataset num_records must be positive")
        if self.replication < 1:
            raise ConfigurationError("replication must be >= 1")

    @property
    def avg_record_bytes(self) -> float:
        """Average record size in bytes."""
        return self.size_bytes / self.num_records


@dataclass(frozen=True)
class InputSplit:
    """A contiguous chunk of a dataset processed by one map task."""

    dataset: Dataset
    index: int
    offset: int
    length: int
    num_records: int

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ConfigurationError("split length must be positive")
        if self.offset < 0:
            raise ConfigurationError("split offset must be >= 0")


def num_blocks(dataset: Dataset, block_size: int) -> int:
    """Number of blocks the dataset occupies at the given block size."""
    if block_size <= 0:
        raise ConfigurationError("block_size must be positive")
    return max(1, math.ceil(dataset.size_bytes / block_size))


def split_dataset(dataset: Dataset, block_size: int) -> list[InputSplit]:
    """Split a dataset into block-sized input splits.

    The final split carries whatever remains and may be smaller than a block,
    mirroring how Hadoop's ``FileInputFormat`` creates splits.
    """
    count = num_blocks(dataset, block_size)
    splits: list[InputSplit] = []
    remaining_bytes = dataset.size_bytes
    remaining_records = dataset.num_records
    offset = 0
    for index in range(count):
        length = min(block_size, remaining_bytes)
        if index == count - 1:
            records = remaining_records
        else:
            records = int(round(dataset.num_records * (length / dataset.size_bytes)))
            # Never hand out more records than remain (datasets with fewer
            # records than blocks simply get empty splits).
            records = max(0, min(records, remaining_records))
        splits.append(
            InputSplit(
                dataset=dataset,
                index=index,
                offset=offset,
                length=length,
                num_records=records,
            )
        )
        offset += length
        remaining_bytes -= length
        remaining_records -= records
    return splits
