"""Time-varying background load on cluster instances.

The paper's log was collected on Amazon EC2, where instances experience
varying load from co-tenant virtual machines, Hadoop daemons, and the
operating system.  That variability is what makes two executions of the
same configuration differ — and it is what several of the paper's
explanations point to ("the average CPU time spent on user processes is not
the same", "the overall memory utilization on the machine was lower").

A :class:`BackgroundLoadProfile` is a piecewise-constant timeline of
(CPU-equivalent load, extra process count) episodes drawn at provision time
from a simple two-state model: the instance is usually *quiet* (a small
daemon-level load) and occasionally *busy* (a noisy neighbour or a burst of
daemon activity consumes a sizeable fraction of a core or more).
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class BackgroundLoadModel:
    """Parameters of the background-load process.

    :param quiet_load: CPU-equivalent load (cores) while quiet.
    :param busy_load_mean: mean additional load while a busy episode is active.
    :param busy_load_sigma: log-normal sigma of the busy-episode load.
    :param busy_probability: probability that any given episode is busy.
    :param episode_seconds_mean: average episode length in seconds.
    :param horizon_seconds: length of the generated timeline.
    """

    quiet_load: float = 0.25
    busy_load_mean: float = 0.9
    busy_load_sigma: float = 0.4
    busy_probability: float = 0.3
    episode_seconds_mean: float = 90.0
    horizon_seconds: float = 4 * 3600.0

    def __post_init__(self) -> None:
        if self.quiet_load < 0:
            raise ConfigurationError("quiet_load must be >= 0")
        if self.busy_load_mean < 0:
            raise ConfigurationError("busy_load_mean must be >= 0")
        if not 0.0 <= self.busy_probability <= 1.0:
            raise ConfigurationError("busy_probability must be in [0, 1]")
        if self.episode_seconds_mean <= 0:
            raise ConfigurationError("episode_seconds_mean must be positive")
        if self.horizon_seconds <= 0:
            raise ConfigurationError("horizon_seconds must be positive")

    def generate(self, rng: random.Random) -> "BackgroundLoadProfile":
        """Draw one piecewise-constant load timeline."""
        times: list[float] = [0.0]
        loads: list[float] = []
        procs: list[int] = []
        clock = 0.0
        while clock < self.horizon_seconds:
            busy = rng.random() < self.busy_probability
            if busy:
                extra = rng.lognormvariate(0.0, self.busy_load_sigma) * self.busy_load_mean
                load = self.quiet_load + extra
                extra_procs = 2 + int(extra * 4)
            else:
                load = self.quiet_load * (0.7 + 0.6 * rng.random())
                extra_procs = 0
            duration = rng.expovariate(1.0 / self.episode_seconds_mean)
            duration = max(10.0, duration)
            loads.append(load)
            procs.append(extra_procs)
            clock += duration
            times.append(clock)
        return BackgroundLoadProfile(times=times, loads=loads, extra_procs=procs)

    def constant(self) -> "BackgroundLoadProfile":
        """A profile with no variability (always the quiet load)."""
        return BackgroundLoadProfile(
            times=[0.0, self.horizon_seconds], loads=[self.quiet_load], extra_procs=[0]
        )


#: The default model used when provisioning clusters.
DEFAULT_BACKGROUND_MODEL = BackgroundLoadModel()


@dataclass
class BackgroundLoadProfile:
    """A piecewise-constant background load timeline for one instance.

    ``times`` has one more entry than ``loads``: episode ``i`` spans
    ``[times[i], times[i+1])`` with load ``loads[i]`` and ``extra_procs[i]``
    additional processes.  Queries outside the horizon return the last
    episode's values.
    """

    times: list[float] = field(default_factory=lambda: [0.0, float("inf")])
    loads: list[float] = field(default_factory=lambda: [0.25])
    extra_procs: list[int] = field(default_factory=lambda: [0])

    def __post_init__(self) -> None:
        if len(self.times) != len(self.loads) + 1:
            raise ConfigurationError("times must have exactly one more entry than loads")
        if len(self.loads) != len(self.extra_procs):
            raise ConfigurationError("loads and extra_procs must have the same length")
        if not self.loads:
            raise ConfigurationError("a load profile needs at least one episode")

    def _episode_index(self, time: float) -> int:
        index = bisect.bisect_right(self.times, time) - 1
        return min(max(index, 0), len(self.loads) - 1)

    def load_at(self, time: float) -> float:
        """CPU-equivalent background load at a point in time."""
        return self.loads[self._episode_index(time)]

    def procs_at(self, time: float) -> int:
        """Extra (non-Hadoop) processes running at a point in time."""
        return self.extra_procs[self._episode_index(time)]

    def next_change_after(self, time: float) -> float:
        """The next episode boundary strictly after ``time`` (inf if none)."""
        index = bisect.bisect_right(self.times, time)
        if index >= len(self.times):
            return float("inf")
        boundary = self.times[index]
        if boundary <= time:
            return float("inf")
        return boundary

    def mean_load(self) -> float:
        """Time-weighted mean load over the whole horizon."""
        total_time = 0.0
        weighted = 0.0
        for index, load in enumerate(self.loads):
            span = self.times[index + 1] - self.times[index]
            if span == float("inf"):
                span = 1.0
            total_time += span
            weighted += load * span
        return weighted / total_time if total_time else 0.0

    def cursor(self) -> "LoadCursor":
        """A monotonic-time reader over this profile's episodes."""
        return LoadCursor(self)


class LoadCursor:
    """O(1)-amortised episode lookup for monotonically increasing times.

    :meth:`BackgroundLoadProfile.load_at` bisects the episode table on every
    call; consumers that walk time forward (the simulation engine, the
    Ganglia sampler) instead advance this cursor, which returns exactly the
    same ``(load, extra_procs)`` values as the bisecting accessors.
    """

    __slots__ = ("_profile", "_pos", "_last")

    def __init__(self, profile: BackgroundLoadProfile) -> None:
        self._profile = profile
        self._pos = 0
        self._last = len(profile.loads) - 1

    def at(self, time: float) -> tuple[float, int]:
        """(load, extra_procs) at ``time``; times must not go backwards."""
        profile = self._profile
        times = profile.times
        pos = self._pos
        last = self._last
        while pos < last and time >= times[pos + 1]:
            pos += 1
        self._pos = pos
        return profile.loads[pos], profile.extra_procs[pos]

    def next_change_after(self, time: float) -> float:
        """The next episode boundary strictly after ``time`` (inf if none).

        Matches :meth:`BackgroundLoadProfile.next_change_after` for the
        episode the cursor currently points at — call :meth:`at` with the
        same ``time`` first.
        """
        boundary = self._profile.times[self._pos + 1]
        return boundary if boundary > time else float("inf")
