"""Job specification handed to the simulation engine.

A :class:`JobSpec` bundles the map and reduce task attempts of one MapReduce
job together with the configuration it runs under and free-form metadata
(the Pig script name, the input dataset, the parameter-grid point) that ends
up as job-level features in the execution log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.cluster.config import MapReduceConfig
from repro.cluster.tasks import TaskAttempt, TaskType
from repro.exceptions import ConfigurationError


@dataclass
class JobSpec:
    """A complete MapReduce job ready to be simulated.

    :param job_id: Hadoop-style job identifier, e.g. ``job_202606140001_0042``.
    :param name: human-readable job name (typically the Pig script).
    :param map_tasks: map task attempts, one per input split.
    :param reduce_tasks: reduce task attempts.
    :param config: the MapReduce configuration used by the job.
    :param metadata: additional job-level raw features (input size, script,
        reduce-task factor, ...) recorded verbatim in the execution log.
    :param submit_time: wall-clock submission timestamp (seconds).
    """

    job_id: str
    name: str
    map_tasks: list[TaskAttempt]
    reduce_tasks: list[TaskAttempt]
    config: MapReduceConfig
    metadata: dict[str, Any] = field(default_factory=dict)
    submit_time: float = 0.0

    def __post_init__(self) -> None:
        if not self.map_tasks:
            raise ConfigurationError("a job needs at least one map task")
        for task in self.map_tasks:
            if task.task_type is not TaskType.MAP:
                raise ConfigurationError(
                    f"task {task.task_id} listed as a map task but has type "
                    f"{task.task_type.value}"
                )
        for task in self.reduce_tasks:
            if task.task_type is not TaskType.REDUCE:
                raise ConfigurationError(
                    f"task {task.task_id} listed as a reduce task but has type "
                    f"{task.task_type.value}"
                )

    @property
    def num_map_tasks(self) -> int:
        """Number of map tasks (== number of input splits)."""
        return len(self.map_tasks)

    @property
    def num_reduce_tasks(self) -> int:
        """Number of reduce tasks."""
        return len(self.reduce_tasks)

    @property
    def all_tasks(self) -> list[TaskAttempt]:
        """Map tasks followed by reduce tasks."""
        return list(self.map_tasks) + list(self.reduce_tasks)


def make_job_id(sequence: int, cluster_start: int = 202606140001) -> str:
    """Build a Hadoop-style job identifier."""
    return f"job_{cluster_start}_{sequence:04d}"


def make_task_id(job_id: str, task_type: TaskType, index: int) -> str:
    """Build a Hadoop-style task identifier tied to a job."""
    suffix = "m" if task_type is TaskType.MAP else "r"
    body = job_id[len("job_"):] if job_id.startswith("job_") else job_id
    return f"task_{body}_{suffix}_{index:06d}"
