"""The experiment parameter grid (Table 2), log builders and sweep executor.

The paper collected its execution log by running every combination of the
parameters in Table 2.  :func:`paper_grid` reproduces that grid exactly;
:func:`small_grid` and :func:`tiny_grid` are cheaper grids used by tests,
examples and the default benchmark configuration so that the full pipeline
stays fast on a laptop.

:func:`build_experiment_log` is the sweep executor.  Every grid cell's
random seed is derived up front from the base seed (in the exact order the
sequential sweep would draw them), so cells are independent and can run
**process-parallel** (``workers > 1``): each worker simulates its cells on
a job-relative clock, and the parent merges the results in deterministic
grid order, re-basing the recorded wall-clock submit times — the resulting
:class:`~repro.logs.store.ExecutionLog` is bit-identical to a sequential
sweep.  Records are appended through the log's batched column-friendly
API rather than one duplicate-checked call per task.
"""

from __future__ import annotations

import itertools
import random
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.cluster.config import MapReduceConfig
from repro.cluster.faults import NO_FAULTS, FaultModel
from repro.exceptions import WorkloadError
from repro.logs.records import JobRecord, TaskRecord
from repro.logs.store import ExecutionLog
from repro.units import MB
from repro.workloads.excite import DEFAULT_PROFILE, ExciteLogProfile, excite_dataset
from repro.workloads.pig import PIG_SCRIPTS, PigScript, get_script
from repro.workloads.runner import run_workload


@dataclass(frozen=True)
class GridPoint:
    """One configuration in the experiment grid."""

    num_instances: int
    concat_factor: int
    block_size: int
    reduce_tasks_factor: float
    io_sort_factor: int
    script_name: str

    def num_reduce_tasks(self) -> int:
        """Reducer count implied by the factor, as in the paper.

        "If there are 8 instances and the reduce tasks factor is 1.5, then
        the number of reduce tasks is set to 12."
        """
        return max(1, int(round(self.num_instances * self.reduce_tasks_factor)))

    def config(self) -> MapReduceConfig:
        """The MapReduce configuration for this grid point."""
        return MapReduceConfig(
            dfs_block_size=self.block_size,
            num_reduce_tasks=self.num_reduce_tasks(),
            io_sort_factor=self.io_sort_factor,
        )

    def script(self) -> PigScript:
        """The Pig script cost model for this grid point."""
        return get_script(self.script_name)


@dataclass(frozen=True)
class ParameterGrid:
    """A cartesian product of workload parameters (Table 2's structure)."""

    num_instances: tuple[int, ...]
    concat_factors: tuple[int, ...]
    block_sizes: tuple[int, ...]
    reduce_tasks_factors: tuple[float, ...]
    io_sort_factors: tuple[int, ...]
    script_names: tuple[str, ...]

    def __post_init__(self) -> None:
        for name, values in (
            ("num_instances", self.num_instances),
            ("concat_factors", self.concat_factors),
            ("block_sizes", self.block_sizes),
            ("reduce_tasks_factors", self.reduce_tasks_factors),
            ("io_sort_factors", self.io_sort_factors),
            ("script_names", self.script_names),
        ):
            if not values:
                raise WorkloadError(f"grid dimension {name} must not be empty")
        for script in self.script_names:
            if script not in PIG_SCRIPTS:
                raise WorkloadError(f"unknown Pig script in grid: {script!r}")

    def points(self) -> list[GridPoint]:
        """All grid points, in a deterministic order."""
        combos = itertools.product(
            self.num_instances,
            self.concat_factors,
            self.block_sizes,
            self.reduce_tasks_factors,
            self.io_sort_factors,
            self.script_names,
        )
        return [
            GridPoint(
                num_instances=instances,
                concat_factor=concat,
                block_size=block,
                reduce_tasks_factor=factor,
                io_sort_factor=sort_factor,
                script_name=script,
            )
            for instances, concat, block, factor, sort_factor, script in combos
        ]

    def __len__(self) -> int:
        return (
            len(self.num_instances)
            * len(self.concat_factors)
            * len(self.block_sizes)
            * len(self.reduce_tasks_factors)
            * len(self.io_sort_factors)
            * len(self.script_names)
        )


def paper_grid() -> ParameterGrid:
    """The exact grid of Table 2 (540 configurations)."""
    return ParameterGrid(
        num_instances=(1, 2, 4, 8, 16),
        concat_factors=(30, 60),  # 1.3 GB and 2.6 GB
        block_sizes=(64 * MB, 256 * MB, 1024 * MB),
        reduce_tasks_factors=(1.0, 1.5, 2.0),
        io_sort_factors=(10, 50, 100),
        script_names=("simple-filter.pig", "simple-groupby.pig"),
    )


def small_grid() -> ParameterGrid:
    """A reduced grid (96 configurations) for benchmarks and examples."""
    return ParameterGrid(
        num_instances=(1, 2, 4, 8),
        concat_factors=(6, 12),
        block_sizes=(64 * MB, 256 * MB),
        reduce_tasks_factors=(1.0, 2.0),
        io_sort_factors=(10, 100),
        script_names=("simple-filter.pig", "simple-groupby.pig"),
    )


def tiny_grid() -> ParameterGrid:
    """A minimal grid (16 configurations) for fast unit tests."""
    return ParameterGrid(
        num_instances=(2, 4),
        concat_factors=(2, 4),
        block_sizes=(64 * MB, 256 * MB),
        reduce_tasks_factors=(1.0,),
        io_sort_factors=(10,),
        script_names=("simple-filter.pig", "simple-groupby.pig"),
    )


@dataclass(frozen=True)
class _SweepCell:
    """One unit of sweep work: a grid point with its derived seed."""

    sequence: int
    repetition: int
    point: GridPoint
    job_seed: int
    fault_model: FaultModel
    profile: ExciteLogProfile
    sampling_period: float
    include_tasks: bool
    engine: str


def _simulate_cell(cell: _SweepCell) -> tuple[JobRecord, list[TaskRecord]]:
    """Run one sweep cell on a job-relative clock (submit time zero).

    Top-level so that :class:`~concurrent.futures.ProcessPoolExecutor` can
    dispatch it to worker processes; only the records travel back.
    """
    run = run_workload(
        script=cell.point.script(),
        dataset=excite_dataset(cell.point.concat_factor, cell.profile),
        config=cell.point.config(),
        num_instances=cell.point.num_instances,
        seed=cell.job_seed,
        job_sequence=cell.sequence,
        reduce_tasks_factor=cell.point.reduce_tasks_factor,
        fault_model=cell.fault_model,
        profile=cell.profile,
        sampling_period=cell.sampling_period,
        submit_time=0.0,
        extra_metadata={"grid_repetition": cell.repetition},
        engine=cell.engine,
    )
    return run.job_record, run.task_records if cell.include_tasks else []


#: Features carrying wall-clock timestamps, re-based when merging cells.
_JOB_TIME_FEATURES = ("submit_time", "start_time")
_TASK_TIME_FEATURES = ("start_time", "taskfinishtime")


def _shift_times(
    job: JobRecord, tasks: list[TaskRecord], offset: float
) -> None:
    """Re-base a cell's wall-clock features onto the sweep submit clock.

    Cells simulate at submit time zero; adding the offset afterwards is
    bit-identical to simulating with the offset (float addition is
    commutative, and the job-relative clock never enters the simulation).
    """
    if offset == 0.0:
        return
    for name in _JOB_TIME_FEATURES:
        job.features[name] += offset
    for task in tasks:
        features = task.features
        for name in _TASK_TIME_FEATURES:
            features[name] += offset


def build_experiment_log(
    grid: ParameterGrid,
    seed: int = 0,
    repetitions: int = 1,
    fault_model: FaultModel = NO_FAULTS,
    profile: ExciteLogProfile = DEFAULT_PROFILE,
    sampling_period: float = 5.0,
    include_tasks: bool = True,
    engine: str = "event",
    workers: int = 1,
) -> ExecutionLog:
    """Run every grid point through the simulator and collect the log.

    :param grid: the parameter grid to sweep.
    :param seed: base random seed; each job gets a distinct derived seed so
        that repeated executions of the same configuration differ (as real
        EC2 runs would).
    :param repetitions: how many times to run each grid point.
    :param fault_model: optional fault injection shared by all jobs.
    :param profile: data profile for the synthetic Excite log.
    :param sampling_period: Ganglia sampling period in seconds.
    :param include_tasks: whether task records are kept (task-level queries
        need them; job-level experiments can skip them to save memory).
    :param engine: simulation engine (``"event"`` or ``"reference"``, see
        :data:`repro.workloads.runner.ENGINES`).
    :param workers: worker processes for the sweep.  ``1`` runs in-process;
        any value produces the same log (per-cell seeds are pre-derived and
        results merge in deterministic grid order).
    """
    if repetitions < 1:
        raise WorkloadError("repetitions must be >= 1")
    if workers < 1:
        raise WorkloadError("workers must be >= 1")
    rng = random.Random(seed)
    cells: list[_SweepCell] = []
    sequence = 0
    for repetition in range(repetitions):
        for point in grid.points():
            sequence += 1
            cells.append(
                _SweepCell(
                    sequence=sequence,
                    repetition=repetition,
                    point=point,
                    job_seed=rng.randrange(2 ** 31),
                    fault_model=fault_model,
                    profile=profile,
                    sampling_period=sampling_period,
                    include_tasks=include_tasks,
                    engine=engine,
                )
            )

    if workers == 1:
        results = map(_simulate_cell, cells)
    else:
        executor = ProcessPoolExecutor(max_workers=workers)
        try:
            results = list(executor.map(_simulate_cell, cells, chunksize=4))
        finally:
            executor.shutdown()

    log = ExecutionLog()
    submit_clock = 0.0
    for job_record, task_records in results:
        _shift_times(job_record, task_records, submit_clock)
        submit_clock += job_record.duration + 30.0
        log.extend(jobs=(job_record,), tasks=task_records)
    return log
