"""The experiment parameter grid (Table 2) and log builders.

The paper collected its execution log by running every combination of the
parameters in Table 2.  :func:`paper_grid` reproduces that grid exactly;
:func:`small_grid` and :func:`tiny_grid` are cheaper grids used by tests,
examples and the default benchmark configuration so that the full pipeline
stays fast on a laptop.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field

from repro.cluster.config import MapReduceConfig
from repro.cluster.faults import NO_FAULTS, FaultModel
from repro.exceptions import WorkloadError
from repro.logs.store import ExecutionLog
from repro.units import MB
from repro.workloads.excite import DEFAULT_PROFILE, ExciteLogProfile, excite_dataset
from repro.workloads.pig import PIG_SCRIPTS, PigScript, get_script
from repro.workloads.runner import run_workload


@dataclass(frozen=True)
class GridPoint:
    """One configuration in the experiment grid."""

    num_instances: int
    concat_factor: int
    block_size: int
    reduce_tasks_factor: float
    io_sort_factor: int
    script_name: str

    def num_reduce_tasks(self) -> int:
        """Reducer count implied by the factor, as in the paper.

        "If there are 8 instances and the reduce tasks factor is 1.5, then
        the number of reduce tasks is set to 12."
        """
        return max(1, int(round(self.num_instances * self.reduce_tasks_factor)))

    def config(self) -> MapReduceConfig:
        """The MapReduce configuration for this grid point."""
        return MapReduceConfig(
            dfs_block_size=self.block_size,
            num_reduce_tasks=self.num_reduce_tasks(),
            io_sort_factor=self.io_sort_factor,
        )

    def script(self) -> PigScript:
        """The Pig script cost model for this grid point."""
        return get_script(self.script_name)


@dataclass(frozen=True)
class ParameterGrid:
    """A cartesian product of workload parameters (Table 2's structure)."""

    num_instances: tuple[int, ...]
    concat_factors: tuple[int, ...]
    block_sizes: tuple[int, ...]
    reduce_tasks_factors: tuple[float, ...]
    io_sort_factors: tuple[int, ...]
    script_names: tuple[str, ...]

    def __post_init__(self) -> None:
        for name, values in (
            ("num_instances", self.num_instances),
            ("concat_factors", self.concat_factors),
            ("block_sizes", self.block_sizes),
            ("reduce_tasks_factors", self.reduce_tasks_factors),
            ("io_sort_factors", self.io_sort_factors),
            ("script_names", self.script_names),
        ):
            if not values:
                raise WorkloadError(f"grid dimension {name} must not be empty")
        for script in self.script_names:
            if script not in PIG_SCRIPTS:
                raise WorkloadError(f"unknown Pig script in grid: {script!r}")

    def points(self) -> list[GridPoint]:
        """All grid points, in a deterministic order."""
        combos = itertools.product(
            self.num_instances,
            self.concat_factors,
            self.block_sizes,
            self.reduce_tasks_factors,
            self.io_sort_factors,
            self.script_names,
        )
        return [
            GridPoint(
                num_instances=instances,
                concat_factor=concat,
                block_size=block,
                reduce_tasks_factor=factor,
                io_sort_factor=sort_factor,
                script_name=script,
            )
            for instances, concat, block, factor, sort_factor, script in combos
        ]

    def __len__(self) -> int:
        return (
            len(self.num_instances)
            * len(self.concat_factors)
            * len(self.block_sizes)
            * len(self.reduce_tasks_factors)
            * len(self.io_sort_factors)
            * len(self.script_names)
        )


def paper_grid() -> ParameterGrid:
    """The exact grid of Table 2 (540 configurations)."""
    return ParameterGrid(
        num_instances=(1, 2, 4, 8, 16),
        concat_factors=(30, 60),  # 1.3 GB and 2.6 GB
        block_sizes=(64 * MB, 256 * MB, 1024 * MB),
        reduce_tasks_factors=(1.0, 1.5, 2.0),
        io_sort_factors=(10, 50, 100),
        script_names=("simple-filter.pig", "simple-groupby.pig"),
    )


def small_grid() -> ParameterGrid:
    """A reduced grid (96 configurations) for benchmarks and examples."""
    return ParameterGrid(
        num_instances=(1, 2, 4, 8),
        concat_factors=(6, 12),
        block_sizes=(64 * MB, 256 * MB),
        reduce_tasks_factors=(1.0, 2.0),
        io_sort_factors=(10, 100),
        script_names=("simple-filter.pig", "simple-groupby.pig"),
    )


def tiny_grid() -> ParameterGrid:
    """A minimal grid (16 configurations) for fast unit tests."""
    return ParameterGrid(
        num_instances=(2, 4),
        concat_factors=(2, 4),
        block_sizes=(64 * MB, 256 * MB),
        reduce_tasks_factors=(1.0,),
        io_sort_factors=(10,),
        script_names=("simple-filter.pig", "simple-groupby.pig"),
    )


def build_experiment_log(
    grid: ParameterGrid,
    seed: int = 0,
    repetitions: int = 1,
    fault_model: FaultModel = NO_FAULTS,
    profile: ExciteLogProfile = DEFAULT_PROFILE,
    sampling_period: float = 5.0,
    include_tasks: bool = True,
) -> ExecutionLog:
    """Run every grid point through the simulator and collect the log.

    :param grid: the parameter grid to sweep.
    :param seed: base random seed; each job gets a distinct derived seed so
        that repeated executions of the same configuration differ (as real
        EC2 runs would).
    :param repetitions: how many times to run each grid point.
    :param fault_model: optional fault injection shared by all jobs.
    :param profile: data profile for the synthetic Excite log.
    :param sampling_period: Ganglia sampling period in seconds.
    :param include_tasks: whether task records are kept (task-level queries
        need them; job-level experiments can skip them to save memory).
    """
    if repetitions < 1:
        raise WorkloadError("repetitions must be >= 1")
    log = ExecutionLog()
    sequence = 0
    submit_clock = 0.0
    rng = random.Random(seed)
    for repetition in range(repetitions):
        for point in grid.points():
            sequence += 1
            job_seed = rng.randrange(2 ** 31)
            dataset = excite_dataset(point.concat_factor, profile)
            run = run_workload(
                script=point.script(),
                dataset=dataset,
                config=point.config(),
                num_instances=point.num_instances,
                seed=job_seed,
                job_sequence=sequence,
                reduce_tasks_factor=point.reduce_tasks_factor,
                fault_model=fault_model,
                profile=profile,
                sampling_period=sampling_period,
                submit_time=submit_clock,
                extra_metadata={"grid_repetition": repetition},
            )
            submit_clock += run.job_record.duration + 30.0
            log.add_job(run.job_record, run.task_records if include_tasks else ())
    return log
