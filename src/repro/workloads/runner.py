"""Run one configured workload through the simulator and extract records.

This module is the glue between the substrates: it provisions a cluster,
compiles the Pig script, runs the simulation engine, samples Ganglia-style
metrics, and produces the :class:`~repro.logs.records.JobRecord` /
:class:`~repro.logs.records.TaskRecord` feature vectors PerfXplain consumes.

The feature names deliberately match the ones quoted in the paper's
explanations (``inputsize``, ``numinstances``, ``blocksize``,
``num_reduce_tasks``, ``iosortfactor``, ``pig_script``, ``tracker_name``,
``hostname``, ``map_input_records``, ``file_bytes_written``,
``avg_cpu_user``, ``avg_load_five``, ...).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.cluster.cluster import Cluster, ClusterSpec
from repro.cluster.config import MapReduceConfig
from repro.cluster.engine import SimulationEngine, SimulationResult, TaskExecution
from repro.cluster.faults import NO_FAULTS, FaultModel
from repro.cluster.hdfs import Dataset
from repro.cluster.jobs import make_job_id
from repro.cluster.tasks import TaskType
from repro.logs.records import FeatureValue, JobRecord, TaskRecord
from repro.monitoring.aggregate import job_metric_averages, task_metric_averages
from repro.monitoring.sampler import GangliaSampler
from repro.workloads.excite import DEFAULT_PROFILE, ExciteLogProfile
from repro.workloads.pig import PigScript, compile_pig_job


@dataclass
class WorkloadRun:
    """Everything produced by running one workload configuration."""

    job_record: JobRecord
    task_records: list[TaskRecord]
    simulation: SimulationResult


def run_workload(
    script: PigScript,
    dataset: Dataset,
    config: MapReduceConfig,
    num_instances: int,
    seed: int = 0,
    job_sequence: int = 1,
    reduce_tasks_factor: float | None = None,
    fault_model: FaultModel = NO_FAULTS,
    profile: ExciteLogProfile = DEFAULT_PROFILE,
    sampling_period: float = 5.0,
    submit_time: float = 0.0,
    extra_metadata: dict[str, FeatureValue] | None = None,
) -> WorkloadRun:
    """Simulate one job and return its execution-log records.

    :param script: the Pig script cost model to run.
    :param dataset: the input dataset.
    :param config: MapReduce configuration for the job.
    :param num_instances: cluster size (number of virtual machines).
    :param seed: seed controlling cluster jitter, runtime noise and skew.
    :param job_sequence: sequence number used to mint the job id.
    :param reduce_tasks_factor: the grid's reduce-task factor (recorded as a
        feature; the actual reducer count is in ``config.num_reduce_tasks``).
    :param fault_model: optional fault injection.
    :param profile: statistical profile of the dataset.
    :param sampling_period: Ganglia sampling period in seconds.
    :param submit_time: wall-clock submission time of the job.
    :param extra_metadata: additional job-level features to record verbatim.
    """
    rng = random.Random(seed)
    cluster = ClusterSpec(num_instances=num_instances).provision(rng)
    fault_model.degrade_cluster(cluster, rng)

    job_id = make_job_id(job_sequence)
    metadata: dict[str, FeatureValue] = {
        "reduce_tasks_factor": reduce_tasks_factor
        if reduce_tasks_factor is not None
        else 1.0,
    }
    if extra_metadata:
        metadata.update(extra_metadata)
    # The simulation itself runs on a job-relative clock starting at zero
    # (each job gets a freshly provisioned cluster with its own background
    # load timeline); the wall-clock submit time only shifts the timestamps
    # recorded as features.
    spec = compile_pig_job(
        job_id=job_id,
        script=script,
        dataset=dataset,
        config=config,
        profile=profile,
        rng=rng,
        submit_time=0.0,
        metadata=metadata,
    )

    engine = SimulationEngine(cluster, fault_model=fault_model, rng=rng)
    result = engine.run(spec)

    sampler = GangliaSampler(period=sampling_period, rng=random.Random(seed + 1))
    samples = sampler.sample(result.trace, cluster, start=result.job.start_time,
                             end=result.job.finish_time)

    job_record = _build_job_record(result, cluster, samples, time_offset=submit_time)
    task_records = [
        _build_task_record(task, result, samples, time_offset=submit_time)
        for task in result.tasks
    ]
    return WorkloadRun(job_record=job_record, task_records=task_records, simulation=result)


# --------------------------------------------------------------------- #
# feature extraction
# --------------------------------------------------------------------- #


def _build_job_record(
    result: SimulationResult, cluster: Cluster, samples, time_offset: float = 0.0
) -> JobRecord:
    job = result.job
    config = job.config
    map_tasks = result.map_tasks()
    reduce_tasks = result.reduce_tasks()
    total_map_slots = cluster.total_map_slots(config.map_slots_per_instance)

    features: dict[str, FeatureValue] = {
        # configuration parameters
        "pig_script": str(job.metadata.get("pig_script", job.name)),
        "numinstances": job.num_instances,
        "instance_type": cluster[0].instance_type.name,
        "blocksize": config.dfs_block_size,
        "num_reduce_tasks": job.num_reduce_tasks,
        "reduce_tasks_factor": float(job.metadata.get("reduce_tasks_factor", 1.0)),
        "iosortfactor": config.io_sort_factor,
        "iosortmb": config.io_sort_mb,
        "map_slots_per_instance": config.map_slots_per_instance,
        "reduce_slots_per_instance": config.reduce_slots_per_instance,
        "cluster_map_slots": total_map_slots,
        # data characteristics
        "inputsize": int(job.metadata.get("inputsize", job.counters.get("input_bytes", 0))),
        "input_records": int(job.metadata.get("input_records",
                                              job.counters.get("input_records", 0))),
        "dataset_name": str(job.metadata.get("dataset_name", "")),
        # job structure
        "num_map_tasks": job.num_map_tasks,
        "map_waves": _ceil_div(job.num_map_tasks, total_map_slots),
        "submit_time": time_offset + job.submit_time,
        "start_time": time_offset + job.start_time,
        # aggregated counters
        "hdfs_bytes_read": job.counters.get("hdfs_bytes_read", 0),
        "hdfs_bytes_written": job.counters.get("hdfs_bytes_written", 0),
        "file_bytes_written": job.counters.get("file_bytes_written", 0),
        "map_output_bytes": sum(t.counters.get("output_bytes", 0) for t in map_tasks),
        "map_input_records": sum(t.counters.get("input_records", 0) for t in map_tasks),
        "map_output_records": sum(t.counters.get("output_records", 0) for t in map_tasks),
        "reduce_input_records": sum(t.counters.get("input_records", 0) for t in reduce_tasks),
        "reduce_output_records": sum(t.counters.get("output_records", 0) for t in reduce_tasks),
        "shuffle_bytes": job.counters.get("shuffle_bytes", 0),
        "spilled_records": job.counters.get("spilled_records", 0),
    }
    features.update(job_metric_averages(result.tasks, samples))

    # Extra metadata passed by the grid (e.g. grid point index) is kept.
    for key, value in job.metadata.items():
        if key not in features and key not in {"pig_script", "inputsize", "input_records",
                                               "dataset_name", "reduce_tasks_factor"}:
            features[key] = value

    return JobRecord(job_id=job.job_id, features=features, duration=job.duration)


def _build_task_record(
    task: TaskExecution, result: SimulationResult, samples, time_offset: float = 0.0
) -> TaskRecord:
    job = result.job
    config = job.config
    counters = task.counters
    is_map = task.task_type is TaskType.MAP

    features: dict[str, FeatureValue] = {
        "task_type": task.task_type.value,
        "job_id": job.job_id,
        "pig_script": str(job.metadata.get("pig_script", job.name)),
        "hostname": task.hostname,
        "tracker_name": task.tracker_name,
        "instance_index": task.instance_index,
        "wave": task.wave,
        "slot_order": task.slot_order,
        "attempts": task.attempts,
        "start_time": time_offset + task.start_time,
        "taskfinishtime": time_offset + task.finish_time,
        # configuration context copied onto every task
        "numinstances": job.num_instances,
        "blocksize": config.dfs_block_size,
        "num_reduce_tasks": job.num_reduce_tasks,
        "iosortfactor": config.io_sort_factor,
        "num_map_tasks": job.num_map_tasks,
        # data volumes
        "inputsize": counters.get("input_bytes", 0),
        "input_records": counters.get("input_records", 0),
        "output_bytes": counters.get("output_bytes", 0),
        "output_records": counters.get("output_records", 0),
        "hdfs_bytes_read": counters.get("hdfs_bytes_read", 0),
        "hdfs_bytes_written": counters.get("hdfs_bytes_written", 0),
        "file_bytes_read": counters.get("file_bytes_read", 0),
        "file_bytes_written": counters.get("file_bytes_written", 0),
        "spilled_records": counters.get("spilled_records", 0),
        "combine_input_records": counters.get("combine_input_records", 0),
        "combine_output_records": counters.get("combine_output_records", 0),
        "shuffle_bytes": counters.get("shuffle_bytes", 0),
        # map-only aliases used by the paper's despite clauses
        "map_input_records": counters.get("input_records", 0) if is_map else None,
        "map_output_records": counters.get("output_records", 0) if is_map else None,
        # phase timings the paper lists as task features (sorttime,
        # shuffletime, taskfinishtime); the map/reduce phase times themselves
        # are omitted because they are the duration being explained.
        "shuffletime": task.phase_seconds("shuffle") if not is_map else None,
        "sorttime": task.phase_seconds("sort"),
    }
    features.update(task_metric_averages(task, samples))
    return TaskRecord(
        task_id=task.task_id,
        job_id=job.job_id,
        features=features,
        duration=task.duration,
    )


def _ceil_div(numerator: int, denominator: int) -> int:
    return -(-numerator // max(1, denominator))
