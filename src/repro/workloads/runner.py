"""Run one configured workload through the simulator and extract records.

This module is the glue between the substrates: it provisions a cluster,
compiles the Pig script, runs the simulation engine, samples Ganglia-style
metrics, and produces the :class:`~repro.logs.records.JobRecord` /
:class:`~repro.logs.records.TaskRecord` feature vectors PerfXplain consumes.

The feature names deliberately match the ones quoted in the paper's
explanations (``inputsize``, ``numinstances``, ``blocksize``,
``num_reduce_tasks``, ``iosortfactor``, ``pig_script``, ``tracker_name``,
``hostname``, ``map_input_records``, ``file_bytes_written``,
``avg_cpu_user``, ``avg_load_five``, ...).

Every record additionally carries provenance stamps — ``engine_seed``
always, ``scenario`` and ``scenario_variant`` for scenario-generated logs —
so any log record traces back to a reproducible ``(scenario, seed)``
replay.  All three are excluded from the explanation feature schema
(:data:`repro.core.features.DEFAULT_EXCLUDED_FEATURES`) — they label the
data, they are not observables.

Task records are emitted **columnar**: per-feature columns (job-level
constants broadcast, per-task values extracted in bulk) are zipped into
record rows, skipping the per-record dict-literal assembly the original
runner performed — the record-construction twin of the engine's columnar
trace emission.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import repeat

from repro.cluster.cluster import Cluster, ClusterSpec
from repro.cluster.config import MapReduceConfig
from repro.cluster.engine import SimulationEngine, SimulationResult, TaskExecution
from repro.cluster.engineref import ReferenceSimulationEngine
from repro.cluster.faults import NO_FAULTS, FaultModel
from repro.cluster.hdfs import Dataset
from repro.cluster.jobs import make_job_id
from repro.cluster.tasks import TaskType
from repro.exceptions import WorkloadError
from repro.logs.records import FeatureValue, JobRecord, TaskRecord
from repro.monitoring.aggregate import (
    job_averages_from_task_averages,
    task_metric_averages,
)
from repro.monitoring.sampler import GangliaSampler
from repro.workloads.excite import DEFAULT_PROFILE, ExciteLogProfile
from repro.workloads.pig import PigScript, compile_pig_job

#: Engine implementations selectable by name.  ``event`` is the incremental
#: event-core engine; ``reference`` is the frozen pre-overhaul loop kept for
#: differential testing and throughput baselines.
ENGINES = {
    "event": SimulationEngine,
    "reference": ReferenceSimulationEngine,
}


@dataclass
class WorkloadRun:
    """Everything produced by running one workload configuration."""

    job_record: JobRecord
    task_records: list[TaskRecord]
    simulation: SimulationResult


def run_workload(
    script: PigScript,
    dataset: Dataset,
    config: MapReduceConfig,
    num_instances: int,
    seed: int = 0,
    job_sequence: int = 1,
    reduce_tasks_factor: float | None = None,
    fault_model: FaultModel = NO_FAULTS,
    profile: ExciteLogProfile = DEFAULT_PROFILE,
    sampling_period: float = 5.0,
    submit_time: float = 0.0,
    extra_metadata: dict[str, FeatureValue] | None = None,
    engine: str = "event",
    scenario: str | None = None,
    scenario_variant: str | None = None,
    cluster_spec: ClusterSpec | None = None,
    locality_miss_fraction: float = 0.0,
) -> WorkloadRun:
    """Simulate one job and return its execution-log records.

    :param script: the Pig script cost model to run.
    :param dataset: the input dataset.
    :param config: MapReduce configuration for the job.
    :param num_instances: cluster size (number of virtual machines).
    :param seed: seed controlling cluster jitter, runtime noise and skew.
    :param job_sequence: sequence number used to mint the job id.
    :param reduce_tasks_factor: the grid's reduce-task factor (recorded as a
        feature; the actual reducer count is in ``config.num_reduce_tasks``).
    :param fault_model: optional fault injection.
    :param profile: statistical profile of the dataset.
    :param sampling_period: Ganglia sampling period in seconds.
    :param submit_time: wall-clock submission time of the job.
    :param extra_metadata: additional job-level features to record verbatim.
    :param engine: simulation engine name (see :data:`ENGINES`).
    :param scenario: scenario identifier stamped into every record (set by
        the :mod:`repro.workloads.scenarios` builders).
    :param scenario_variant: scenario variant label (e.g. ``"baseline"`` /
        ``"affected"``), stamped alongside ``scenario``.
    :param cluster_spec: full cluster override (instance type, background
        model, jitter); when given, ``num_instances`` must match its size.
    :param locality_miss_fraction: fraction of map tasks whose input block
        is not local and must be read over the network (cold HDFS caches,
        rack-remote replicas).
    """
    engine_cls = ENGINES.get(engine)
    if engine_cls is None:
        known = ", ".join(sorted(ENGINES))
        raise WorkloadError(f"unknown engine {engine!r}; known engines: {known}")
    if cluster_spec is None:
        cluster_spec = ClusterSpec(num_instances=num_instances)
    elif cluster_spec.num_instances != num_instances:
        raise WorkloadError(
            f"cluster_spec provisions {cluster_spec.num_instances} instances "
            f"but num_instances is {num_instances}"
        )
    rng = random.Random(seed)
    cluster = cluster_spec.provision(rng)
    fault_model.degrade_cluster(cluster, rng)

    job_id = make_job_id(job_sequence)
    metadata: dict[str, FeatureValue] = {
        "reduce_tasks_factor": reduce_tasks_factor
        if reduce_tasks_factor is not None
        else 1.0,
    }
    if extra_metadata:
        metadata.update(extra_metadata)
    # The simulation itself runs on a job-relative clock starting at zero
    # (each job gets a freshly provisioned cluster with its own background
    # load timeline); the wall-clock submit time only shifts the timestamps
    # recorded as features.
    spec = compile_pig_job(
        job_id=job_id,
        script=script,
        dataset=dataset,
        config=config,
        profile=profile,
        rng=rng,
        submit_time=0.0,
        metadata=metadata,
        locality_miss_fraction=locality_miss_fraction,
    )

    sim_engine = engine_cls(cluster, fault_model=fault_model, rng=rng)
    result = sim_engine.run(spec)
    result.engine_seed = seed
    result.scenario = scenario

    sampler = GangliaSampler(period=sampling_period, rng=random.Random(seed + 1))
    samples = sampler.sample(result.trace, cluster, start=result.job.start_time,
                             end=result.job.finish_time)

    # Each task's metric averages are computed exactly once and shared by
    # the task records and the job-level percolation.
    task_averages = [task_metric_averages(task, samples) for task in result.tasks]
    job_record = _build_job_record(result, cluster, task_averages,
                                   time_offset=submit_time,
                                   scenario_variant=scenario_variant)
    task_records = _build_task_records(result, task_averages,
                                       time_offset=submit_time,
                                       scenario_variant=scenario_variant)
    return WorkloadRun(job_record=job_record, task_records=task_records, simulation=result)


# --------------------------------------------------------------------- #
# feature extraction
# --------------------------------------------------------------------- #


def _build_job_record(
    result: SimulationResult,
    cluster: Cluster,
    task_averages: list[dict[str, float]],
    time_offset: float = 0.0,
    scenario_variant: str | None = None,
) -> JobRecord:
    job = result.job
    config = job.config
    map_tasks = result.map_tasks()
    reduce_tasks = result.reduce_tasks()
    total_map_slots = cluster.total_map_slots(config.map_slots_per_instance)

    features: dict[str, FeatureValue] = {
        # configuration parameters
        "pig_script": str(job.metadata.get("pig_script", job.name)),
        "numinstances": job.num_instances,
        "instance_type": cluster[0].instance_type.name,
        "blocksize": config.dfs_block_size,
        "num_reduce_tasks": job.num_reduce_tasks,
        "reduce_tasks_factor": float(job.metadata.get("reduce_tasks_factor", 1.0)),
        "iosortfactor": config.io_sort_factor,
        "iosortmb": config.io_sort_mb,
        "map_slots_per_instance": config.map_slots_per_instance,
        "reduce_slots_per_instance": config.reduce_slots_per_instance,
        "cluster_map_slots": total_map_slots,
        # data characteristics
        "inputsize": int(job.metadata.get("inputsize", job.counters.get("input_bytes", 0))),
        "input_records": int(job.metadata.get("input_records",
                                              job.counters.get("input_records", 0))),
        "dataset_name": str(job.metadata.get("dataset_name", "")),
        # job structure
        "num_map_tasks": job.num_map_tasks,
        "map_waves": _ceil_div(job.num_map_tasks, total_map_slots),
        "submit_time": time_offset + job.submit_time,
        "start_time": time_offset + job.start_time,
        # aggregated counters
        "hdfs_bytes_read": job.counters.get("hdfs_bytes_read", 0),
        "hdfs_bytes_written": job.counters.get("hdfs_bytes_written", 0),
        "file_bytes_written": job.counters.get("file_bytes_written", 0),
        "map_output_bytes": sum(t.counters.get("output_bytes", 0) for t in map_tasks),
        "map_input_records": sum(t.counters.get("input_records", 0) for t in map_tasks),
        "map_output_records": sum(t.counters.get("output_records", 0) for t in map_tasks),
        "reduce_input_records": sum(t.counters.get("input_records", 0) for t in reduce_tasks),
        "reduce_output_records": sum(t.counters.get("output_records", 0) for t in reduce_tasks),
        "shuffle_bytes": job.counters.get("shuffle_bytes", 0),
        "spilled_records": job.counters.get("spilled_records", 0),
        # provenance (excluded from the explanation schema)
        "engine_seed": result.engine_seed,
    }
    if result.scenario is not None:
        features["scenario"] = result.scenario
    if scenario_variant is not None:
        features["scenario_variant"] = scenario_variant
    features.update(job_averages_from_task_averages(task_averages))

    # Extra metadata passed by the grid (e.g. grid point index) is kept.
    for key, value in job.metadata.items():
        if key not in features and key not in {"pig_script", "inputsize", "input_records",
                                               "dataset_name", "reduce_tasks_factor"}:
            features[key] = value

    return JobRecord(job_id=job.job_id, features=features, duration=job.duration)


#: Task-record feature names, in column order (see ``_build_task_records``).
_TASK_FEATURE_NAMES: tuple[str, ...] = (
    "task_type",
    "job_id",
    "pig_script",
    "hostname",
    "tracker_name",
    "instance_index",
    "wave",
    "slot_order",
    "attempts",
    "start_time",
    "taskfinishtime",
    # configuration context copied onto every task
    "numinstances",
    "blocksize",
    "num_reduce_tasks",
    "iosortfactor",
    "num_map_tasks",
    # data volumes
    "inputsize",
    "input_records",
    "output_bytes",
    "output_records",
    "hdfs_bytes_read",
    "hdfs_bytes_written",
    "file_bytes_read",
    "file_bytes_written",
    "spilled_records",
    "combine_input_records",
    "combine_output_records",
    "shuffle_bytes",
    # map-only aliases used by the paper's despite clauses
    "map_input_records",
    "map_output_records",
    # phase timings the paper lists as task features (sorttime,
    # shuffletime, taskfinishtime); the map/reduce phase times themselves
    # are omitted because they are the duration being explained.
    "shuffletime",
    "sorttime",
    # provenance (excluded from the explanation schema)
    "engine_seed",
)


def _build_task_records(
    result: SimulationResult,
    task_averages: list[dict[str, float]],
    time_offset: float = 0.0,
    scenario_variant: str | None = None,
) -> list[TaskRecord]:
    """Emit one job's task records from per-feature column batches.

    Job-level constants are broadcast with :func:`itertools.repeat`,
    per-task values are extracted column-at-a-time, and each record's
    feature dict is assembled in one C-level ``dict(zip(names, row))``
    instead of a 50-key per-record dict literal.
    """
    job = result.job
    config = job.config
    tasks = result.tasks
    if not tasks:
        return []
    counters = [task.counters for task in tasks]
    is_map = [task.task_type is TaskType.MAP for task in tasks]

    columns: list = [
        [task.task_type.value for task in tasks],
        repeat(job.job_id),
        repeat(str(job.metadata.get("pig_script", job.name))),
        [task.hostname for task in tasks],
        [task.tracker_name for task in tasks],
        [task.instance_index for task in tasks],
        [task.wave for task in tasks],
        [task.slot_order for task in tasks],
        [task.attempts for task in tasks],
        [time_offset + task.start_time for task in tasks],
        [time_offset + task.finish_time for task in tasks],
        repeat(job.num_instances),
        repeat(config.dfs_block_size),
        repeat(job.num_reduce_tasks),
        repeat(config.io_sort_factor),
        repeat(job.num_map_tasks),
        [c.get("input_bytes", 0) for c in counters],
        [c.get("input_records", 0) for c in counters],
        [c.get("output_bytes", 0) for c in counters],
        [c.get("output_records", 0) for c in counters],
        [c.get("hdfs_bytes_read", 0) for c in counters],
        [c.get("hdfs_bytes_written", 0) for c in counters],
        [c.get("file_bytes_read", 0) for c in counters],
        [c.get("file_bytes_written", 0) for c in counters],
        [c.get("spilled_records", 0) for c in counters],
        [c.get("combine_input_records", 0) for c in counters],
        [c.get("combine_output_records", 0) for c in counters],
        [c.get("shuffle_bytes", 0) for c in counters],
        [c.get("input_records", 0) if m else None for c, m in zip(counters, is_map)],
        [c.get("output_records", 0) if m else None for c, m in zip(counters, is_map)],
        [None if m else task.phase_seconds("shuffle")
         for task, m in zip(tasks, is_map)],
        [task.phase_seconds("sort") for task in tasks],
        repeat(result.engine_seed),
    ]
    names = list(_TASK_FEATURE_NAMES)
    if result.scenario is not None:
        names.append("scenario")
        columns.append(repeat(result.scenario))
    if scenario_variant is not None:
        names.append("scenario_variant")
        columns.append(repeat(scenario_variant))
    # The avg_* metric columns ride along from the precomputed per-task
    # averages (each dict iterates in AVG_METRIC_NAMES order).
    avg_names = tuple(task_averages[0])
    names.extend(avg_names)
    columns.extend(
        [averages[name] for averages in task_averages] for name in avg_names
    )
    names = tuple(names)

    job_id = job.job_id
    return [
        TaskRecord(
            task_id=task.task_id,
            job_id=job_id,
            features=dict(zip(names, row)),
            duration=task.duration,
        )
        for task, row in zip(tasks, zip(*columns))
    ]


def _ceil_div(numerator: int, denominator: int) -> int:
    return -(-numerator // max(1, denominator))
