"""Declarative catalog of performance-pathology scenarios.

PerfXplain's evaluation needs logs that exhibit *known* pathologies so that
explanations can be scored against ground truth.  Each :class:`Scenario`
bundles everything needed to manufacture one pathology end to end:

* **variants** — declarative workload configurations
  (:class:`ScenarioVariant`), typically a healthy baseline and an affected
  twin differing in exactly one knob (input size, instance type, fault
  model, background-load model, reducer count, ``io.sort.factor``,
  locality-miss fraction, ...);
* a **PXQL query** (despite / observed / expected clauses plus the entity
  kind) that a user debugging the pathology would ask;
* the **consistent features** — the raw features a correct explanation may
  cite, which is the scenario's ground truth for evaluation.

:func:`build_scenario_log` simulates every variant (repetitions
interleaved, so submission order never separates the variants) and stamps
``scenario`` / ``scenario_variant`` / ``engine_seed`` into every record;
the stamps are excluded from the explanation schema
(:data:`repro.core.features.DEFAULT_EXCLUDED_FEATURES`) but let any log
record be traced back to a reproducible ``(scenario, seed)`` replay and
let evaluation label pairs with ground truth.

The catalog (:func:`scenario_catalog`) ships the pathology families the
paper and the follow-on literature discuss: map-wave steps from input
growth, the motivating cluster-underuse case, degraded nodes, straggler
tasks, noisy-neighbour contention, reducer data skew, the last-task-faster
effect, heterogeneous hardware, merge/reducer misconfigurations and cold
HDFS locality misses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.cluster.background import DEFAULT_BACKGROUND_MODEL, BackgroundLoadModel
from repro.cluster.cluster import ClusterSpec
from repro.cluster.config import MapReduceConfig
from repro.cluster.faults import NO_FAULTS, FaultModel
from repro.core.pxql.ast import Comparison, Operator, Predicate
from repro.core.pxql.query import EntityKind, PXQLQuery
from repro.exceptions import WorkloadError
from repro.logs.store import ExecutionLog
from repro.units import MB
from repro.workloads.excite import DEFAULT_PROFILE, ExciteLogProfile, excite_dataset
from repro.workloads.pig import get_script
from repro.workloads.runner import run_workload

#: All avg_* monitoring features derived from CPU, load and process counts —
#: the evidence trail of anything that slows a node down without changing
#: the job's configuration.
_LOAD_FEATURES = (
    "avg_cpu_user", "avg_cpu_system", "avg_cpu_idle", "avg_cpu_wio",
    "avg_load_one", "avg_load_five", "avg_load_fifteen",
    "avg_proc_total", "avg_proc_run",
)


@dataclass(frozen=True)
class ScenarioVariant:
    """One workload configuration inside a scenario.

    Defaults describe a small healthy cluster; scenarios override the one
    knob they are about (plus whatever scale they need).  Variants are
    frozen and picklable, so scenario sweeps parallelise like grid sweeps.
    """

    label: str
    script_name: str = "simple-filter.pig"
    concat_factor: int = 6
    num_instances: int = 2
    block_size: int = 64 * MB
    reduce_tasks_factor: float = 1.0
    num_reduce_tasks: int | None = None
    io_sort_factor: int = 10
    instance_type: str = "m1.large"
    background_model: BackgroundLoadModel | None = DEFAULT_BACKGROUND_MODEL
    fault_model: FaultModel = NO_FAULTS
    locality_miss_fraction: float = 0.0
    repetitions: int = 3

    def resolved_reduce_tasks(self) -> int:
        """Reducer count: explicit override, else the paper's factor rule."""
        if self.num_reduce_tasks is not None:
            return self.num_reduce_tasks
        return max(1, int(round(self.num_instances * self.reduce_tasks_factor)))

    def config(self) -> MapReduceConfig:
        """The MapReduce configuration for this variant."""
        return MapReduceConfig(
            dfs_block_size=self.block_size,
            num_reduce_tasks=self.resolved_reduce_tasks(),
            io_sort_factor=self.io_sort_factor,
        )

    def cluster_spec(self) -> ClusterSpec:
        """The cluster this variant provisions."""
        return ClusterSpec(
            num_instances=self.num_instances,
            instance_type=self.instance_type,
            background_model=self.background_model,
        )

    def but(self, label: str, **overrides) -> "ScenarioVariant":
        """A copy with a new label and overridden knobs (composition)."""
        return replace(self, label=label, **overrides)


@dataclass(frozen=True)
class Scenario:
    """One catalog entry: a reproducible pathology plus its ground truth.

    :param name: stable identifier stamped into every record.
    :param entity: ``"job"`` or ``"task"`` — the query's entity kind.
    :param description: what the pathology is and how it is manufactured.
    :param paper_query: the paper query family the scenario exercises.
    :param knobs: human-readable summary of the knob(s) the affected
        variant turns (for the catalog table).
    :param consistent_features: raw features a scenario-consistent
        explanation may cite (the evaluation ground truth).
    :param variants: the workload configurations to simulate.
    :param despite: despite-clause atoms as (pair feature, operator, value).
    :param observed: the observed ``duration_compare`` value.
    :param expected: the expected ``duration_compare`` value.
    :param sampling_period: Ganglia sampling period for the scenario's
        jobs (scenario jobs are small, so sampling is finer than the
        grid's 5 s default).
    """

    name: str
    entity: str
    description: str
    paper_query: str
    knobs: str
    consistent_features: frozenset[str]
    variants: tuple[ScenarioVariant, ...]
    despite: tuple[tuple[str, Operator, str], ...]
    observed: str = "GT"
    expected: str = "SIM"
    sampling_period: float = 2.0

    def __post_init__(self) -> None:
        if self.entity not in ("job", "task"):
            raise WorkloadError(
                f"scenario entity must be job or task, got {self.entity!r}"
            )
        if not self.variants:
            raise WorkloadError(f"scenario {self.name!r} has no variants")

    def query(self) -> PXQLQuery:
        """The PXQL query a user debugging this pathology would ask."""
        despite = Predicate.conjunction(
            [Comparison(feature, operator, value)
             for feature, operator, value in self.despite]
        )
        return PXQLQuery(
            entity=EntityKind.JOB if self.entity == "job" else EntityKind.TASK,
            despite=despite,
            observed=Predicate.of(
                Comparison("duration_compare", Operator.EQ, self.observed)
            ),
            expected=Predicate.of(
                Comparison("duration_compare", Operator.EQ, self.expected)
            ),
            name=f"scenario:{self.name}",
        )

    def is_consistent(self, explanation) -> bool:
        """Whether an explanation's because clause cites ground truth.

        ``explanation`` is a :class:`repro.core.explanation.Explanation`;
        at least one because-atom must be over a consistent raw feature.
        """
        from repro.core.pairs import raw_feature_of

        return any(
            raw_feature_of(atom.feature) in self.consistent_features
            for atom in explanation.because.atoms
        )


def build_scenario_log(
    scenario: Scenario,
    seed: int = 0,
    engine: str = "event",
    profile: ExciteLogProfile = DEFAULT_PROFILE,
    job_sequence_start: int = 0,
    log: ExecutionLog | None = None,
) -> ExecutionLog:
    """Simulate every variant of a scenario and collect the stamped log.

    Variant repetitions are interleaved (repetition-major order) so that
    wall-clock submission order never becomes a proxy for the variant
    label.  Each job's seed derives from the base seed in iteration order;
    together with the stamped ``engine_seed`` feature this makes any job in
    the log replayable in isolation.

    :param scenario: the catalog entry to simulate.
    :param seed: base seed for the per-job seed stream.
    :param engine: simulation engine name (see
        :data:`repro.workloads.runner.ENGINES`).
    :param profile: synthetic Excite data profile.
    :param job_sequence_start: offset for minted job ids (lets several
        scenario logs merge without id collisions).
    :param log: existing log to append to (a new one by default).
    """
    rng = random.Random(seed)
    log = log if log is not None else ExecutionLog()
    sequence = job_sequence_start
    max_repetitions = max(variant.repetitions for variant in scenario.variants)
    submit_clock = 0.0
    for repetition in range(max_repetitions):
        for variant in scenario.variants:
            if repetition >= variant.repetitions:
                continue
            sequence += 1
            job_seed = rng.randrange(2 ** 31)
            run = run_workload(
                script=get_script(variant.script_name),
                dataset=excite_dataset(variant.concat_factor, profile),
                config=variant.config(),
                num_instances=variant.num_instances,
                seed=job_seed,
                job_sequence=sequence,
                reduce_tasks_factor=variant.reduce_tasks_factor,
                fault_model=variant.fault_model,
                profile=profile,
                sampling_period=scenario.sampling_period,
                submit_time=submit_clock,
                engine=engine,
                scenario=scenario.name,
                scenario_variant=variant.label,
                cluster_spec=variant.cluster_spec(),
                locality_miss_fraction=variant.locality_miss_fraction,
            )
            submit_clock += run.job_record.duration + 30.0
            log.extend(jobs=(run.job_record,), tasks=run.task_records)
    return log


def build_catalog_log(
    scenarios: "list[Scenario] | tuple[Scenario, ...] | None" = None,
    seed: int = 0,
    engine: str = "event",
) -> ExecutionLog:
    """One merged log covering several scenarios (distinct job ids)."""
    if scenarios is None:
        scenarios = list(scenario_catalog().values())
    log = ExecutionLog()
    for position, scenario in enumerate(scenarios):
        build_scenario_log(
            scenario,
            seed=seed + position,
            engine=engine,
            job_sequence_start=1000 * (position + 1),
            log=log,
        )
    return log


# --------------------------------------------------------------------- #
# the catalog
# --------------------------------------------------------------------- #

_EQ = Operator.EQ

#: A quiet cluster: constant daemon-level load, no noisy neighbours.
_QUIET = BackgroundLoadModel(quiet_load=0.25, busy_probability=0.0)

#: A heavily contended cluster: long, frequent noisy-neighbour bursts.
_NOISY = BackgroundLoadModel(
    quiet_load=0.4, busy_probability=0.85, busy_load_mean=2.5,
    busy_load_sigma=0.3, episode_seconds_mean=40.0,
)

_JOB_DESPITE_SAME_SCRIPT_CLUSTER = (
    ("pig_script_isSame", _EQ, "T"),
    ("numinstances_isSame", _EQ, "T"),
)


def _catalog() -> list[Scenario]:
    baseline = ScenarioVariant(label="baseline")
    return [
        Scenario(
            name="input-growth-step",
            entity="job",
            description=(
                "The input grows past the cluster's map-slot capacity, adding "
                "map waves: runtime steps up although script, cluster and "
                "configuration are unchanged."
            ),
            paper_query="WhySlowerDespiteSameNumInstances",
            knobs="concat_factor 4 -> 12 (one wave -> three waves)",
            consistent_features=frozenset({
                "inputsize", "input_records", "num_map_tasks", "map_waves",
                "dataset_name", "hdfs_bytes_read", "hdfs_bytes_written",
                "map_input_records", "map_output_bytes", "map_output_records",
                "file_bytes_written",
            }),
            variants=(
                # Enough repetitions that bursty background load cannot
                # accidentally separate the variants as cleanly as the
                # input-size features do.
                baseline.but("baseline", concat_factor=4, repetitions=5),
                baseline.but("affected", concat_factor=12, repetitions=5),
            ),
            despite=_JOB_DESPITE_SAME_SCRIPT_CLUSTER + (
                ("blocksize_isSame", _EQ, "T"),
            ),
        ),
        Scenario(
            name="cluster-underuse",
            entity="job",
            description=(
                "The paper's motivating example: with large blocks on a big "
                "cluster, a 4x larger input takes the same time because "
                "neither input fills the cluster and every map processes one "
                "block.  A small-block contrast variant shows what changing "
                "the wave structure actually does."
            ),
            paper_query="motivating example (Section 1)",
            knobs="concat_factor 6 -> 24 at blocksize 256MB on 8 instances",
            consistent_features=frozenset({
                "map_waves", "blocksize", "num_map_tasks", "cluster_map_slots",
            }),
            variants=(
                ScenarioVariant(label="baseline", concat_factor=6,
                                num_instances=8, block_size=256 * MB),
                ScenarioVariant(label="affected", concat_factor=24,
                                num_instances=8, block_size=256 * MB),
                ScenarioVariant(label="contrast", concat_factor=24,
                                num_instances=8, block_size=64 * MB),
            ),
            despite=_JOB_DESPITE_SAME_SCRIPT_CLUSTER + (
                ("inputsize_isSame", _EQ, "F"),
            ),
            observed="SIM",
            expected="GT",
        ),
        Scenario(
            name="degraded-node",
            entity="job",
            description=(
                "Every node of the affected jobs' cluster runs at a fraction "
                "of its rated speed (contended hypervisor, failing disk): "
                "identical configuration, much slower job, and only the "
                "monitoring time series tell the story."
            ),
            paper_query="WhySlowerDespiteSameNumInstances",
            knobs="slow_node_probability=1.0, slow_node_factor=0.35",
            consistent_features=frozenset(_LOAD_FEATURES),
            variants=(
                baseline.but("baseline", background_model=_QUIET),
                baseline.but(
                    "affected",
                    background_model=_QUIET,
                    fault_model=FaultModel(slow_node_probability=1.0,
                                           slow_node_factor=0.35),
                ),
            ),
            despite=_JOB_DESPITE_SAME_SCRIPT_CLUSTER + (
                ("inputsize_isSame", _EQ, "T"),
            ),
        ),
        Scenario(
            name="straggler-node",
            entity="task",
            description=(
                "Some nodes of one cluster are degraded, so otherwise "
                "identical map tasks straggle on the slow hosts while their "
                "twins finish on time."
            ),
            paper_query="WhyLastTaskFaster (task-level contrast)",
            knobs="slow_node_probability=0.5, slow_node_factor=0.4",
            consistent_features=frozenset({
                "hostname", "tracker_name", "instance_index",
                "start_time", "taskfinishtime", "wave", "slot_order",
            } | set(_LOAD_FEATURES)),
            variants=(
                ScenarioVariant(
                    label="affected",
                    concat_factor=12,
                    num_instances=4,
                    background_model=_QUIET,
                    fault_model=FaultModel(slow_node_probability=0.5,
                                           slow_node_factor=0.4),
                    repetitions=3,
                ),
            ),
            despite=(
                ("job_id_isSame", _EQ, "T"),
                ("task_type_isSame", _EQ, "T"),
                ("inputsize_compare", _EQ, "SIM"),
            ),
        ),
        Scenario(
            name="background-contention",
            entity="job",
            description=(
                "Noisy neighbours: the affected jobs run on instances with "
                "heavy bursty background load that steals CPU from every "
                "task.  Configuration is identical; load averages and "
                "process counts give it away."
            ),
            paper_query="WhySlowerDespiteSameNumInstances",
            knobs="busy_probability 0 -> 0.85, busy_load_mean 2.5",
            # avg_mem_free rides along: busy episodes consume memory too.
            consistent_features=frozenset(_LOAD_FEATURES) | {"avg_mem_free"},
            variants=(
                baseline.but("baseline", background_model=_QUIET),
                baseline.but("affected", background_model=_NOISY),
            ),
            despite=_JOB_DESPITE_SAME_SCRIPT_CLUSTER + (
                ("inputsize_isSame", _EQ, "T"),
            ),
        ),
        Scenario(
            name="data-skew",
            entity="task",
            description=(
                "A group-by over a pathologically skewed key distribution: "
                "one reducer receives a large multiple of the median "
                "shuffle share and dominates the job tail."
            ),
            paper_query="WhyLastTaskFaster (reduce-side contrast)",
            knobs="reducer_skew_sigma=1.2 (skewed-groupby.pig), 8 reducers",
            consistent_features=frozenset({
                "inputsize", "input_records", "output_bytes", "output_records",
                "shuffle_bytes", "file_bytes_read", "hdfs_bytes_written",
                "spilled_records", "sorttime", "shuffletime",
                "combine_input_records", "combine_output_records",
            }),
            variants=(
                # Large enough input that the fat reducer's share dwarfs the
                # fixed task-startup overhead every reducer pays.
                ScenarioVariant(
                    label="affected",
                    script_name="skewed-groupby.pig",
                    concat_factor=24,
                    num_instances=2,
                    num_reduce_tasks=8,
                    background_model=_QUIET,
                    repetitions=3,
                ),
            ),
            despite=(
                ("job_id_isSame", _EQ, "T"),
                ("task_type_isSame", _EQ, "T"),
            ),
        ),
        Scenario(
            name="last-task-faster",
            entity="task",
            description=(
                "The paper's first evaluation query: the final map task of a "
                "wave-remainder has the machine to itself and finishes "
                "faster than its co-located predecessors."
            ),
            paper_query="WhyLastTaskFaster",
            knobs="11 equal-size maps on 4 map slots (partial final wave)",
            # avg_mem_free rides along: a lone task leaves task memory free.
            consistent_features=frozenset({
                "wave", "slot_order", "start_time", "taskfinishtime",
                "avg_mem_free",
            } | set(_LOAD_FEATURES)),
            variants=(
                # 16 x 44MB = 704MB = exactly 11 x 64MB blocks: every split
                # is full-size, so inputsize_compare = SIM holds across the
                # whole job and only the wave structure differs.
                ScenarioVariant(
                    label="affected",
                    concat_factor=16,
                    num_instances=2,
                    background_model=_QUIET,
                    repetitions=3,
                ),
            ),
            despite=(
                ("job_id_isSame", _EQ, "T"),
                ("task_type_isSame", _EQ, "T"),
                ("inputsize_compare", _EQ, "SIM"),
                ("hostname_isSame", _EQ, "T"),
            ),
        ),
        Scenario(
            name="heterogeneous-hardware",
            entity="job",
            description=(
                "The affected jobs were provisioned on a weaker instance "
                "type (fewer, slower cores, less memory): same script, same "
                "cluster size, very different runtime."
            ),
            paper_query="WhySlowerDespiteSameNumInstances",
            knobs="instance_type m1.large -> m1.small",
            consistent_features=frozenset({
                "instance_type", "avg_mem_free", "avg_mem_cached",
            } | set(_LOAD_FEATURES)),
            variants=(
                baseline.but("baseline", background_model=_QUIET),
                baseline.but("affected", background_model=_QUIET,
                             instance_type="m1.small"),
            ),
            despite=_JOB_DESPITE_SAME_SCRIPT_CLUSTER + (
                ("inputsize_isSame", _EQ, "T"),
            ),
        ),
        Scenario(
            name="merge-misconfiguration",
            entity="job",
            description=(
                "io.sort.factor misconfigured to 2: merging the map "
                "segments takes four on-disk passes instead of one, and the "
                "shuffle-bound job pays the difference in its reduce sort."
            ),
            paper_query="WhySlowerDespiteSameNumInstances",
            knobs="io_sort_factor 100 -> 2 on shuffle-heavy.pig",
            consistent_features=frozenset({"iosortfactor"}),
            variants=(
                ScenarioVariant(
                    label="baseline", script_name="shuffle-heavy.pig",
                    concat_factor=12, num_instances=2, num_reduce_tasks=1,
                    io_sort_factor=100, background_model=_QUIET,
                ),
                ScenarioVariant(
                    label="affected", script_name="shuffle-heavy.pig",
                    concat_factor=12, num_instances=2, num_reduce_tasks=1,
                    io_sort_factor=2, background_model=_QUIET,
                ),
            ),
            despite=_JOB_DESPITE_SAME_SCRIPT_CLUSTER + (
                ("inputsize_isSame", _EQ, "T"),
            ),
        ),
        Scenario(
            name="reducer-starvation",
            entity="job",
            description=(
                "mapred.reduce.tasks misconfigured to 1: the whole shuffle "
                "lands on a single reducer and the reduce phase serialises "
                "while the rest of the cluster idles.  Both the cause "
                "(reducer count) and its monitoring symptom (an idle "
                "cluster during the long tail) are scenario-consistent."
            ),
            paper_query="WhySlowerDespiteSameNumInstances",
            knobs="num_reduce_tasks 8 -> 1 on simple-join.pig",
            consistent_features=frozenset({
                "num_reduce_tasks", "reduce_tasks_factor",
            } | set(_LOAD_FEATURES)),
            variants=(
                ScenarioVariant(
                    label="baseline", script_name="simple-join.pig",
                    concat_factor=8, num_instances=4, num_reduce_tasks=8,
                    reduce_tasks_factor=2.0, background_model=_QUIET,
                ),
                ScenarioVariant(
                    label="affected", script_name="simple-join.pig",
                    concat_factor=8, num_instances=4, num_reduce_tasks=1,
                    reduce_tasks_factor=0.25, background_model=_QUIET,
                ),
            ),
            despite=_JOB_DESPITE_SAME_SCRIPT_CLUSTER + (
                ("inputsize_isSame", _EQ, "T"),
            ),
        ),
        Scenario(
            name="cold-hdfs-locality",
            entity="job",
            description=(
                "Cold HDFS: the affected jobs' map inputs have no local "
                "replica and stream across the oversubscribed rack link.  "
                "An I/O-bound scan pays for it directly, and the network "
                "ingress counters expose the remote reads."
            ),
            paper_query="WhySlowerDespiteSameNumInstances",
            knobs="locality_miss_fraction 0 -> 0.9 on scan-heavy.pig",
            consistent_features=frozenset({"avg_bytes_in", "avg_pkts_in"}),
            variants=(
                ScenarioVariant(
                    label="baseline", script_name="scan-heavy.pig",
                    concat_factor=24, num_instances=2, block_size=256 * MB,
                    background_model=_QUIET,
                ),
                ScenarioVariant(
                    label="affected", script_name="scan-heavy.pig",
                    concat_factor=24, num_instances=2, block_size=256 * MB,
                    background_model=_QUIET, locality_miss_fraction=0.9,
                ),
            ),
            despite=_JOB_DESPITE_SAME_SCRIPT_CLUSTER + (
                ("inputsize_isSame", _EQ, "T"),
                ("blocksize_isSame", _EQ, "T"),
            ),
        ),
    ]


def scenario_catalog() -> dict[str, Scenario]:
    """All catalog scenarios, keyed by name."""
    return {scenario.name: scenario for scenario in _catalog()}


def get_scenario(name: str) -> Scenario:
    """Look up one scenario by name."""
    catalog = scenario_catalog()
    try:
        return catalog[name]
    except KeyError as exc:
        known = ", ".join(sorted(catalog))
        raise WorkloadError(
            f"unknown scenario {name!r}; known scenarios: {known}"
        ) from exc
