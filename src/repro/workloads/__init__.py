"""Workload substrate: datasets, Pig scripts and the experiment grid.

The paper's log was collected by running two Pig scripts
(``simple-filter.pig`` and ``simple-groupby.pig``) over the Excite search
log from the Pig tutorial, across the parameter grid of Table 2.  This
package recreates that pipeline:

* :mod:`repro.workloads.excite` — a synthetic Excite-style search-query log
  (the real file is not redistributable; the generator preserves the
  characteristics the cost model needs: record size, URL-query fraction and
  the user-skew that drives group-by reducer imbalance);
* :mod:`repro.workloads.pig` — Pig script cost models compiled into
  simulator :class:`~repro.cluster.jobs.JobSpec` objects;
* :mod:`repro.workloads.runner` — run one configured job through the
  simulator + monitoring and emit execution-log records (columnar task
  batches, engine selection, provenance stamps);
* :mod:`repro.workloads.grid` — the Table 2 parameter grid and the
  (optionally process-parallel) sweep executor that builds a full
  experiment log;
* :mod:`repro.workloads.scenarios` — the declarative catalog of
  performance pathologies (skew, stragglers, contention, misconfiguration,
  locality misses, ...) with per-scenario ground truth for evaluation.
"""

from repro.workloads.excite import ExciteLogProfile, excite_dataset, generate_excite_records
from repro.workloads.pig import (
    PigScript,
    SIMPLE_FILTER,
    SIMPLE_GROUPBY,
    SKEWED_GROUPBY,
    SCAN_HEAVY,
    SHUFFLE_HEAVY,
    SIMPLE_JOIN,
    SIMPLE_DISTINCT,
    PIG_SCRIPTS,
    compile_pig_job,
)
from repro.workloads.runner import ENGINES, WorkloadRun, run_workload
from repro.workloads.grid import (
    GridPoint,
    ParameterGrid,
    paper_grid,
    small_grid,
    tiny_grid,
    build_experiment_log,
)
from repro.workloads.scenarios import (
    Scenario,
    ScenarioVariant,
    build_catalog_log,
    build_scenario_log,
    get_scenario,
    scenario_catalog,
)

__all__ = [
    "ExciteLogProfile",
    "excite_dataset",
    "generate_excite_records",
    "PigScript",
    "SIMPLE_FILTER",
    "SIMPLE_GROUPBY",
    "SKEWED_GROUPBY",
    "SCAN_HEAVY",
    "SHUFFLE_HEAVY",
    "SIMPLE_JOIN",
    "SIMPLE_DISTINCT",
    "PIG_SCRIPTS",
    "compile_pig_job",
    "ENGINES",
    "WorkloadRun",
    "run_workload",
    "GridPoint",
    "ParameterGrid",
    "paper_grid",
    "small_grid",
    "tiny_grid",
    "build_experiment_log",
    "Scenario",
    "ScenarioVariant",
    "build_catalog_log",
    "build_scenario_log",
    "get_scenario",
    "scenario_catalog",
]
