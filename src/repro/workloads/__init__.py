"""Workload substrate: datasets, Pig scripts and the experiment grid.

The paper's log was collected by running two Pig scripts
(``simple-filter.pig`` and ``simple-groupby.pig``) over the Excite search
log from the Pig tutorial, across the parameter grid of Table 2.  This
package recreates that pipeline:

* :mod:`repro.workloads.excite` — a synthetic Excite-style search-query log
  (the real file is not redistributable; the generator preserves the
  characteristics the cost model needs: record size, URL-query fraction and
  the user-skew that drives group-by reducer imbalance);
* :mod:`repro.workloads.pig` — Pig script cost models compiled into
  simulator :class:`~repro.cluster.jobs.JobSpec` objects;
* :mod:`repro.workloads.runner` — run one configured job through the
  simulator + monitoring and emit execution-log records;
* :mod:`repro.workloads.grid` — the Table 2 parameter grid and helpers that
  build a full experiment log.
"""

from repro.workloads.excite import ExciteLogProfile, excite_dataset, generate_excite_records
from repro.workloads.pig import (
    PigScript,
    SIMPLE_FILTER,
    SIMPLE_GROUPBY,
    SIMPLE_JOIN,
    SIMPLE_DISTINCT,
    PIG_SCRIPTS,
    compile_pig_job,
)
from repro.workloads.runner import WorkloadRun, run_workload
from repro.workloads.grid import (
    GridPoint,
    ParameterGrid,
    paper_grid,
    small_grid,
    tiny_grid,
    build_experiment_log,
)

__all__ = [
    "ExciteLogProfile",
    "excite_dataset",
    "generate_excite_records",
    "PigScript",
    "SIMPLE_FILTER",
    "SIMPLE_GROUPBY",
    "SIMPLE_JOIN",
    "SIMPLE_DISTINCT",
    "PIG_SCRIPTS",
    "compile_pig_job",
    "WorkloadRun",
    "run_workload",
    "GridPoint",
    "ParameterGrid",
    "paper_grid",
    "small_grid",
    "tiny_grid",
    "build_experiment_log",
]
