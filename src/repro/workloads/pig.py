"""Pig script cost models and compilation to simulator jobs.

A :class:`PigScript` captures how a script transforms data volumes and how
much CPU it burns per megabyte.  :func:`compile_pig_job` turns a script, a
dataset and a MapReduce configuration into a :class:`~repro.cluster.jobs.JobSpec`
whose task phases (read, map, spill, shuffle, merge-sort, reduce, write)
have nominal durations derived from the cost model.

The two scripts from the paper:

* ``simple-filter.pig`` — loads the query log, drops queries that are URLs
  and stores the rest.  Pig compiles this to a **map-only** job, so its
  runtime is governed by the number of map waves: input size / block size
  versus the cluster's map slots.  This is exactly the structure behind the
  paper's motivating example (1 GB and 32 GB taking the same time because
  neither fills the cluster and each map processes one block).
* ``simple-groupby.pig`` — groups queries by user and counts them.  Map
  output is small (user, count) pairs, a combiner shrinks it further, and
  reducers aggregate; reducer input is skewed by the Zipf user distribution.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.cluster.config import MapReduceConfig
from repro.cluster.hdfs import Dataset, split_dataset
from repro.cluster.jobs import JobSpec, make_task_id
from repro.cluster.tasks import (
    Phase,
    PhaseKind,
    TaskAttempt,
    TaskCounters,
    TaskType,
    merge_passes,
)
from repro.exceptions import WorkloadError
from repro.units import MB
from repro.workloads.excite import DEFAULT_PROFILE, ExciteLogProfile

#: Reference sequential disk bandwidth used to convert bytes to seconds.
REFERENCE_DISK_MBPS = 80.0
#: Reference network bandwidth used for shuffle transfers.
REFERENCE_NET_MBPS = 60.0
#: Bandwidth of a non-local (rack-remote) HDFS block read.  Cross-rack links
#: are oversubscribed, so a locality miss reads well below the in-rack
#: shuffle bandwidth.
REMOTE_READ_MBPS = 30.0
#: CPU cost of sorting map output, per megabyte.
SORT_CPU_MS_PER_MB = 25.0
#: Fixed per-task startup overhead (JVM launch, split localisation).
TASK_STARTUP_SECONDS = 2.5
#: Fixed per-job overhead (job setup and cleanup tasks).
JOB_SETUP_SECONDS = 6.0


@dataclass(frozen=True)
class PigScript:
    """Cost model of one Pig script.

    :param name: script file name as it appears in the log features.
    :param map_cpu_ms_per_mb: CPU milliseconds spent in map per MB of input.
    :param map_output_byte_ratio: map output bytes / map input bytes
        (after the combiner, if any).
    :param map_output_record_ratio: map output records / input records
        (after the combiner).
    :param map_only: whether the script compiles to a map-only job.
    :param reduce_cpu_ms_per_mb: CPU milliseconds per MB of reduce input.
    :param reduce_output_byte_ratio: reduce output bytes / reduce input bytes.
    :param reducer_skew_sigma: log-normal sigma of reducer input imbalance.
    :param uses_combiner: whether a combiner runs on the map side.
    """

    name: str
    map_cpu_ms_per_mb: float
    map_output_byte_ratio: float
    map_output_record_ratio: float
    map_only: bool
    reduce_cpu_ms_per_mb: float
    reduce_output_byte_ratio: float
    reducer_skew_sigma: float
    uses_combiner: bool

    def __post_init__(self) -> None:
        if self.map_cpu_ms_per_mb <= 0:
            raise WorkloadError("map_cpu_ms_per_mb must be positive")
        if self.map_output_byte_ratio < 0:
            raise WorkloadError("map_output_byte_ratio must be >= 0")
        if not self.map_only and self.reduce_cpu_ms_per_mb <= 0:
            raise WorkloadError("reduce_cpu_ms_per_mb must be positive")
        if self.reducer_skew_sigma < 0:
            raise WorkloadError("reducer_skew_sigma must be >= 0")


SIMPLE_FILTER = PigScript(
    name="simple-filter.pig",
    map_cpu_ms_per_mb=320.0,
    map_output_byte_ratio=0.85,
    map_output_record_ratio=0.85,
    map_only=True,
    reduce_cpu_ms_per_mb=1.0,
    reduce_output_byte_ratio=1.0,
    reducer_skew_sigma=0.0,
    uses_combiner=False,
)

SIMPLE_GROUPBY = PigScript(
    name="simple-groupby.pig",
    map_cpu_ms_per_mb=420.0,
    map_output_byte_ratio=0.06,
    map_output_record_ratio=0.15,
    map_only=False,
    reduce_cpu_ms_per_mb=180.0,
    reduce_output_byte_ratio=0.5,
    reducer_skew_sigma=0.35,
    uses_combiner=True,
)

#: Extensions beyond the paper, useful for "different job" experiments.
SIMPLE_JOIN = PigScript(
    name="simple-join.pig",
    map_cpu_ms_per_mb=520.0,
    map_output_byte_ratio=1.05,
    map_output_record_ratio=1.0,
    map_only=False,
    reduce_cpu_ms_per_mb=350.0,
    reduce_output_byte_ratio=0.7,
    reducer_skew_sigma=0.5,
    uses_combiner=False,
)

#: A group-by whose key distribution is pathologically skewed — one reducer
#: receives a large multiple of the median share.  Used by the data-skew
#: scenario in :mod:`repro.workloads.scenarios`.
SKEWED_GROUPBY = PigScript(
    name="skewed-groupby.pig",
    map_cpu_ms_per_mb=420.0,
    map_output_byte_ratio=0.06,
    map_output_record_ratio=0.15,
    map_only=False,
    reduce_cpu_ms_per_mb=180.0,
    reduce_output_byte_ratio=0.5,
    reducer_skew_sigma=1.2,
    uses_combiner=True,
)

#: An I/O-bound scan: almost no CPU per record, so runtime is dominated by
#: reading the input.  Used by the cold-HDFS-locality scenario, where the
#: read path (local disk vs remote replica) is the whole story.
SCAN_HEAVY = PigScript(
    name="scan-heavy.pig",
    map_cpu_ms_per_mb=10.0,
    map_output_byte_ratio=0.9,
    map_output_record_ratio=0.9,
    map_only=True,
    reduce_cpu_ms_per_mb=1.0,
    reduce_output_byte_ratio=1.0,
    reducer_skew_sigma=0.0,
    uses_combiner=False,
)

#: A shuffle-bound job: map output as large as the input and cheap reducers,
#: so the reduce-side merge sort (governed by ``io.sort.factor``) dominates.
#: Used by the merge-misconfiguration scenario.
SHUFFLE_HEAVY = PigScript(
    name="shuffle-heavy.pig",
    map_cpu_ms_per_mb=150.0,
    map_output_byte_ratio=1.0,
    map_output_record_ratio=1.0,
    map_only=False,
    reduce_cpu_ms_per_mb=30.0,
    reduce_output_byte_ratio=1.0,
    reducer_skew_sigma=0.0,
    uses_combiner=False,
)

SIMPLE_DISTINCT = PigScript(
    name="simple-distinct.pig",
    map_cpu_ms_per_mb=380.0,
    map_output_byte_ratio=0.5,
    map_output_record_ratio=0.5,
    map_only=False,
    reduce_cpu_ms_per_mb=150.0,
    reduce_output_byte_ratio=0.4,
    reducer_skew_sigma=0.2,
    uses_combiner=True,
)

#: All scripts, keyed by file name.
PIG_SCRIPTS: dict[str, PigScript] = {
    script.name: script
    for script in (SIMPLE_FILTER, SIMPLE_GROUPBY, SKEWED_GROUPBY, SCAN_HEAVY,
                   SHUFFLE_HEAVY, SIMPLE_JOIN, SIMPLE_DISTINCT)
}


def get_script(name: str) -> PigScript:
    """Look up a Pig script cost model by file name."""
    try:
        return PIG_SCRIPTS[name]
    except KeyError as exc:
        known = ", ".join(sorted(PIG_SCRIPTS))
        raise WorkloadError(f"unknown Pig script {name!r}; known scripts: {known}") from exc


def compile_pig_job(
    job_id: str,
    script: PigScript,
    dataset: Dataset,
    config: MapReduceConfig,
    profile: ExciteLogProfile = DEFAULT_PROFILE,
    rng: random.Random | None = None,
    submit_time: float = 0.0,
    metadata: dict | None = None,
    locality_miss_fraction: float = 0.0,
) -> JobSpec:
    """Compile a Pig script over a dataset into a simulator job.

    :param job_id: Hadoop-style job identifier.
    :param script: the Pig script cost model.
    :param dataset: the input dataset.
    :param config: the MapReduce configuration (block size determines the
        number of map tasks; ``num_reduce_tasks`` the number of reducers).
    :param profile: statistical profile of the input data.
    :param rng: randomness for reducer skew.
    :param submit_time: job submission timestamp.
    :param metadata: extra job-level features recorded in the log.
    :param locality_miss_fraction: fraction of map tasks whose input block
        has no local replica (cold HDFS cache, rack-remote block): their
        read phase crosses the oversubscribed rack link at
        :data:`REMOTE_READ_MBPS` — well below both local-disk and in-rack
        shuffle bandwidth — instead of streaming from local disk.
    """
    if not 0.0 <= locality_miss_fraction <= 1.0:
        raise WorkloadError("locality_miss_fraction must be in [0, 1]")
    rng = rng if rng is not None else random.Random(0)
    splits = split_dataset(dataset, config.dfs_block_size)
    map_tasks: list[TaskAttempt] = []
    total_map_output_bytes = 0
    total_map_output_records = 0

    for split in splits:
        input_mb = split.length / MB
        # Only draw when the knob is on, so the default path consumes the
        # shared random stream exactly as before.
        remote_read = (
            locality_miss_fraction > 0.0
            and rng.random() < locality_miss_fraction
        )
        pre_combine_records = int(split.num_records * (
            script.map_output_record_ratio if not script.uses_combiner else 1.0
        ))
        output_records = int(split.num_records * script.map_output_record_ratio)
        output_bytes = int(split.length * script.map_output_byte_ratio)
        total_map_output_bytes += output_bytes
        total_map_output_records += output_records

        if remote_read:
            read_phase = Phase("read", input_mb / REMOTE_READ_MBPS, PhaseKind.NETWORK)
        else:
            read_phase = Phase("read", input_mb / REFERENCE_DISK_MBPS, PhaseKind.DISK)
        phases = [
            Phase("setup", TASK_STARTUP_SECONDS, PhaseKind.OVERHEAD),
            read_phase,
            Phase("map", input_mb * script.map_cpu_ms_per_mb / 1000.0, PhaseKind.CPU),
        ]
        output_mb = output_bytes / MB
        if script.map_only:
            phases.append(Phase("write", output_mb / REFERENCE_DISK_MBPS, PhaseKind.DISK))
            hdfs_written = output_bytes
            file_written = 0
            spilled = 0
        else:
            phases.append(Phase("sort", output_mb * SORT_CPU_MS_PER_MB / 1000.0, PhaseKind.CPU))
            phases.append(Phase("spill", output_mb / REFERENCE_DISK_MBPS, PhaseKind.DISK))
            hdfs_written = 0
            file_written = output_bytes
            spilled = output_records

        counters = TaskCounters(
            input_bytes=split.length,
            input_records=split.num_records,
            output_bytes=output_bytes,
            output_records=output_records,
            hdfs_bytes_read=split.length,
            hdfs_bytes_written=hdfs_written,
            file_bytes_written=file_written,
            spilled_records=spilled,
            combine_input_records=pre_combine_records if script.uses_combiner else 0,
            combine_output_records=output_records if script.uses_combiner else 0,
        )
        map_tasks.append(
            TaskAttempt(
                task_id=make_task_id(job_id, TaskType.MAP, split.index),
                task_type=TaskType.MAP,
                phases=phases,
                counters=counters,
            )
        )

    reduce_tasks: list[TaskAttempt] = []
    num_reducers = 0 if script.map_only else config.num_reduce_tasks
    if num_reducers > 0:
        shares = _skewed_shares(num_reducers, script.reducer_skew_sigma, rng)
        for index, share in enumerate(shares):
            reduce_input_bytes = int(total_map_output_bytes * share)
            reduce_input_records = int(total_map_output_records * share)
            reduce_input_mb = reduce_input_bytes / MB
            passes = merge_passes(len(map_tasks), config.io_sort_factor)
            output_bytes = int(reduce_input_bytes * script.reduce_output_byte_ratio)
            phases = [
                Phase("setup", TASK_STARTUP_SECONDS, PhaseKind.OVERHEAD),
                Phase("shuffle", reduce_input_mb / REFERENCE_NET_MBPS, PhaseKind.NETWORK),
                Phase("sort", passes * reduce_input_mb / REFERENCE_DISK_MBPS
                      + reduce_input_mb * SORT_CPU_MS_PER_MB / 1000.0, PhaseKind.DISK),
                Phase("reduce", reduce_input_mb * script.reduce_cpu_ms_per_mb / 1000.0,
                      PhaseKind.CPU),
                Phase("write", (output_bytes / MB) / REFERENCE_DISK_MBPS, PhaseKind.DISK),
            ]
            counters = TaskCounters(
                input_bytes=reduce_input_bytes,
                input_records=reduce_input_records,
                output_bytes=output_bytes,
                output_records=int(reduce_input_records * script.reduce_output_byte_ratio),
                hdfs_bytes_written=output_bytes,
                file_bytes_read=reduce_input_bytes,
                shuffle_bytes=reduce_input_bytes,
            )
            reduce_tasks.append(
                TaskAttempt(
                    task_id=make_task_id(job_id, TaskType.REDUCE, index),
                    task_type=TaskType.REDUCE,
                    phases=phases,
                    counters=counters,
                )
            )

    job_metadata = {
        "pig_script": script.name,
        "inputsize": dataset.size_bytes,
        "input_records": dataset.num_records,
        "dataset_name": dataset.name,
    }
    if metadata:
        job_metadata.update(metadata)
    return JobSpec(
        job_id=job_id,
        name=script.name,
        map_tasks=map_tasks,
        reduce_tasks=reduce_tasks,
        config=config,
        metadata=job_metadata,
        submit_time=submit_time,
    )


def _skewed_shares(count: int, sigma: float, rng: random.Random) -> list[float]:
    """Fractions of the shuffle each reducer receives (sums to 1)."""
    if count == 1:
        return [1.0]
    if sigma <= 0:
        return [1.0 / count] * count
    weights = [rng.lognormvariate(0.0, sigma) for _ in range(count)]
    total = sum(weights)
    return [weight / total for weight in weights]
