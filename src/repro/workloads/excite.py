"""Synthetic Excite search-query log.

The paper's input file is the Excite query log shipped with the Pig
tutorial, concatenated to itself 30 or 60 times to reach roughly 1.3 GB and
2.6 GB.  That file is not redistributable, so this module synthesises a log
with the same *shape*:

* tab-separated records ``user_hash \\t timestamp \\t query``;
* Zipf-distributed users (a few heavy users issue many queries — this is
  what skews the group-by reducers);
* a fraction of queries that are bare URLs (these are what
  ``simple-filter.pig`` removes);
* an average record size matching the original (~55 bytes).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.cluster.hdfs import Dataset
from repro.exceptions import WorkloadError
from repro.units import MB

#: Approximate size of the Pig-tutorial Excite sample file.
BASE_FILE_BYTES = 44 * MB
#: Approximate record count of the sample file.
BASE_FILE_RECORDS = 800_000
#: Average bytes per record implied by the two constants above.
AVG_RECORD_BYTES = BASE_FILE_BYTES / BASE_FILE_RECORDS

_QUERY_TERMS = [
    "weather", "maps", "lyrics", "news", "yahoo", "games", "chat", "mp3",
    "sports", "movies", "jobs", "travel", "stocks", "recipes", "cars",
    "health", "university", "hotels", "flights", "music",
]
_URL_HOSTS = ["www.excite.com", "www.yahoo.com", "www.geocities.com", "www.aol.com"]


@dataclass(frozen=True)
class ExciteLogProfile:
    """Statistical profile of a synthetic Excite log.

    :param url_fraction: fraction of queries that are URLs (removed by the
        filter script).
    :param distinct_user_fraction: distinct users / records (drives group-by
        output size).
    :param user_zipf_exponent: skew of the per-user query distribution.
    :param avg_record_bytes: average record length in bytes.
    """

    url_fraction: float = 0.15
    distinct_user_fraction: float = 0.12
    user_zipf_exponent: float = 1.2
    avg_record_bytes: float = AVG_RECORD_BYTES

    def __post_init__(self) -> None:
        if not 0.0 <= self.url_fraction < 1.0:
            raise WorkloadError("url_fraction must be in [0, 1)")
        if not 0.0 < self.distinct_user_fraction <= 1.0:
            raise WorkloadError("distinct_user_fraction must be in (0, 1]")
        if self.user_zipf_exponent <= 0:
            raise WorkloadError("user_zipf_exponent must be positive")
        if self.avg_record_bytes <= 0:
            raise WorkloadError("avg_record_bytes must be positive")


#: Default profile used by the experiment grid.
DEFAULT_PROFILE = ExciteLogProfile()


def excite_dataset(
    concat_factor: int, profile: ExciteLogProfile = DEFAULT_PROFILE
) -> Dataset:
    """The dataset obtained by concatenating the base file ``concat_factor`` times.

    The paper used factors 30 and 60, giving roughly 1.3 GB and 2.6 GB.
    """
    if concat_factor < 1:
        raise WorkloadError("concat_factor must be >= 1")
    size = BASE_FILE_BYTES * concat_factor
    records = int(size / profile.avg_record_bytes)
    return Dataset(
        name=f"excite-{concat_factor}x.log",
        size_bytes=size,
        num_records=records,
    )


def generate_excite_records(
    count: int,
    profile: ExciteLogProfile = DEFAULT_PROFILE,
    rng: random.Random | None = None,
    num_users: int | None = None,
) -> Iterator[tuple[str, int, str]]:
    """Yield ``count`` synthetic (user_hash, timestamp, query) records.

    This materialises actual text records for the example programs; the
    simulator itself only needs the dataset's aggregate profile.
    """
    if count < 0:
        raise WorkloadError("count must be >= 0")
    rng = rng if rng is not None else random.Random(0)
    if num_users is None:
        num_users = max(1, int(count * profile.distinct_user_fraction))
    # Zipf-like user weights computed once.
    weights = [1.0 / (rank ** profile.user_zipf_exponent) for rank in range(1, num_users + 1)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for weight in weights:
        acc += weight / total
        cumulative.append(acc)
    timestamp = 970916000
    for _ in range(count):
        pick = rng.random()
        lo, hi = 0, num_users - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < pick:
                lo = mid + 1
            else:
                hi = mid
        # A stable 16-hex-digit "anonymised user hash" derived from the user
        # index (the same user always gets the same hash, as in the real log).
        user = f"{(lo * 2654435761) % 16 ** 8:08X}{lo:08X}"
        timestamp += rng.randrange(0, 3)
        if rng.random() < profile.url_fraction:
            query = f"http://{rng.choice(_URL_HOSTS)}/{rng.choice(_QUERY_TERMS)}"
        else:
            terms = rng.sample(_QUERY_TERMS, k=rng.randint(1, 3))
            query = " ".join(terms)
        yield user, timestamp, query


def records_to_text(records: Iterator[tuple[str, int, str]]) -> str:
    """Render records in the tab-separated Excite log format."""
    return "\n".join(f"{user}\t{ts}\t{query}" for user, ts, query in records) + "\n"
