"""Chunked columnar record blocks with a spill-to-disk working set.

A monolithic :class:`~repro.logs.store.RecordBlock` encodes every column of
a log in one resident array per feature — fine at thousands of records,
prohibitive at the million-task scale real MapReduce clusters emit
(PAPERS.md; the layout mirrors how dask partitions one logical array into
fixed-size chunks behind one interface).  This module partitions the block:

* :class:`ChunkedColumn` — one raw feature encoded as fixed-size
  :class:`~repro.logs.store.BlockColumn` chunks.  Per-chunk value codes are
  remapped into one **global** code table as chunks are built (NaN collapses
  into a single canonical slot), so code equality across chunks means value
  equality exactly like a monolithic column, and kernels read it through
  the same ``gather``/``code_of``/``all_numeric`` surface;
* :class:`ChunkStore` — the LRU-pinned working set.  At most
  ``max_resident`` encoded chunks stay in memory; evicted chunks are
  pickled once under a private temp directory and reloaded on demand, so
  peak memory is bounded by the working set, not the log;
* :class:`ChunkedRecordBlock` — the drop-in block: same ``records`` /
  ``ids`` / ``id_bytes`` / ``column()`` / ``key_chunks()`` surface as
  :class:`~repro.logs.store.RecordBlock`, built transparently by
  :meth:`~repro.logs.store.ExecutionLog.record_block` for large or
  explicitly configured logs.

Everything a kernel can observe — gathered arrays, group keys, masks — is
bit-identical between the chunked and monolithic layouts; the differential
suite (``tests/core/test_chunked_sharded_equivalence.py``) asserts it.
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
import threading
import weakref
from collections import OrderedDict
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.logs.records import ExecutionRecord, FeatureValue
from repro.logs.store import (
    BlockColumn,
    _append_codes,
    _blocking_groups_of,
    _column_values,
    _extend_group_cache,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.core.features import FeatureSchema


def _remove_tree(path: str, owner_pid: int) -> None:
    """Remove a spill directory — only in the process that created it.

    Forked kernel workers inherit the finalizer; without the pid guard a
    worker exiting would delete the parent's spill files from under it.
    """
    if os.getpid() == owner_pid:
        shutil.rmtree(path, ignore_errors=True)


class ChunkStore:
    """An LRU-pinned working set of encoded column chunks.

    Chunks enter via :meth:`put` and are read back via :meth:`get`; both
    refresh recency.  When more than ``max_resident`` chunks are held, the
    least recently used ones are evicted — pickled to a private temp
    directory on first eviction, and one spill file serves every later
    reload until the chunk is re-:meth:`put` (the append path extends tail
    chunks in place, which invalidates their spilled copy).
    ``max_resident=None`` disables eviction and the store never touches
    disk.

    Spill files are pid-tagged: forked kernel workers inherit the store and
    may spill chunks of columns they build locally, and distinct processes
    must never race on one file name.  The directory is removed when the
    creating process drops the store (or exits).

    The store is thread-safe: even a pure read (:meth:`get`) refreshes LRU
    recency and may reload-and-evict, so every entry point runs under one
    internal mutex.  The mutex is pid-checked — a forked worker that
    inherited the store (possibly with the parent's lock held by another
    parent thread at fork time) transparently re-creates it on first use
    in the child instead of deadlocking on a stale hold.
    """

    def __init__(
        self,
        max_resident: int | None = None,
        directory: str | Path | None = None,
    ) -> None:
        self.max_resident = max_resident
        self._parent_directory = directory
        self._directory: Path | None = None
        self._finalizer: weakref.finalize | None = None
        self._resident: OrderedDict[tuple, BlockColumn] = OrderedDict()
        self._paths: dict[tuple, Path] = {}
        self._spill_sequence = 0
        self._lock = threading.Lock()
        self._lock_pid = os.getpid()
        #: Accounting: disk round-trips and working-set pressure.
        self.spills = 0
        self.loads = 0
        self.evictions = 0
        self.peak_resident = 0

    def _guard(self) -> threading.Lock:
        """The internal mutex, re-created after a fork (see class docs)."""
        if self._lock_pid != os.getpid():
            self._lock = threading.Lock()
            self._lock_pid = os.getpid()
        return self._lock

    def put(self, key: tuple, chunk: BlockColumn) -> None:
        """Insert (or refresh) one chunk, evicting beyond the capacity.

        Re-putting a key invalidates its spill file: the append path
        mutates tail chunks in place, so a stale on-disk copy must never be
        reloaded over the extended one.
        """
        with self._guard():
            stale_path = self._paths.pop(key, None)
            if stale_path is not None:
                try:
                    stale_path.unlink()
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass
            self._resident[key] = chunk
            self._resident.move_to_end(key)
            if len(self._resident) > self.peak_resident:
                self.peak_resident = len(self._resident)
            self._evict()

    def get(self, key: tuple) -> BlockColumn:
        """One chunk, reloaded from its spill file when not resident."""
        with self._guard():
            chunk = self._resident.get(key)
            if chunk is not None:
                self._resident.move_to_end(key)
                return chunk
            path = self._paths.get(key)
            if path is None:
                raise KeyError(f"unknown chunk {key!r}")
            with open(path, "rb") as handle:
                chunk = pickle.load(handle)
            self.loads += 1
            self._resident[key] = chunk
            if len(self._resident) > self.peak_resident:
                self.peak_resident = len(self._resident)
            self._evict()
            return chunk

    def __len__(self) -> int:
        return len(self._resident)

    def stats(self) -> dict[str, int]:
        """Accounting counters (spills/loads/evictions, set sizes)."""
        with self._guard():
            return {
                "resident": len(self._resident),
                "peak_resident": self.peak_resident,
                "spilled": len(self._paths),
                "spills": self.spills,
                "loads": self.loads,
                "evictions": self.evictions,
            }

    def _evict(self) -> None:
        if self.max_resident is None:
            return
        while len(self._resident) > self.max_resident:
            key, chunk = self._resident.popitem(last=False)
            if key not in self._paths:
                self._spill(key, chunk)
            self.evictions += 1

    def _spill(self, key: tuple, chunk: BlockColumn) -> None:
        directory = self._ensure_directory()
        # pid-tagged names: forked workers spill into the same directory.
        path = directory / f"chunk-{os.getpid()}-{self._spill_sequence:06d}.pkl"
        self._spill_sequence += 1
        with open(path, "wb") as handle:
            pickle.dump(chunk, handle, protocol=pickle.HIGHEST_PROTOCOL)
        self._paths[key] = path
        self.spills += 1

    def _ensure_directory(self) -> Path:
        if self._directory is None:
            parent = self._parent_directory
            self._directory = Path(
                tempfile.mkdtemp(
                    prefix="repro-chunks-",
                    dir=str(parent) if parent is not None else None,
                )
            )
            self._finalizer = weakref.finalize(
                self, _remove_tree, str(self._directory), os.getpid()
            )
        return self._directory


class ChunkedColumn:
    """One raw feature encoded as fixed-size chunks with global codes.

    Chunks are encoded one at a time through
    :meth:`~repro.logs.store.BlockColumn.from_values` — so every per-chunk
    mask and float image is byte-identical to the corresponding slice of a
    monolithic column — and their local value codes are remapped into this
    column's global ``code_of`` table as they are built (all NaN objects
    share one canonical slot, which the canonical NaN code of
    ``from_values`` makes a well-defined merge).  Code *numbering* differs
    from a monolithic column's, which is unobservable: kernels only ever
    compare codes for equality.

    Chunks live in the block's :class:`ChunkStore`; per-chunk ``code_of``
    tables are dropped after merging (the global table subsumes them and
    spill files stay small).
    """

    __slots__ = (
        "name",
        "numeric",
        "all_numeric",
        "code_of",
        "nan_code",
        "next_code",
        "_store",
        "_chunk_rows",
    )

    def __init__(
        self,
        name: str,
        numeric: bool,
        values: Sequence[FeatureValue],
        store: ChunkStore,
        chunk_rows: int,
    ) -> None:
        self.name = name
        self.numeric = numeric
        self._store = store
        self._chunk_rows = chunk_rows
        self.code_of: dict[FeatureValue, int] = {}
        all_numeric = numeric
        code_of = self.code_of
        nan_code = -1
        next_code = 0
        for chunk_index in range(0, len(values), chunk_rows):
            chunk = BlockColumn.from_values(
                name, values[chunk_index : chunk_index + chunk_rows], numeric
            )
            translate = {-1: -1}
            for value, local_code in chunk.code_of.items():
                if value != value:
                    # Every NaN object (id-keyed in the dict) shares the
                    # canonical slot, across chunks.
                    if nan_code < 0:
                        nan_code = next_code
                        next_code += 1
                    code_of[value] = nan_code
                    translate[local_code] = nan_code
                    continue
                global_code = code_of.get(value)
                if global_code is None:
                    global_code = next_code
                    next_code += 1
                    code_of[value] = global_code
                translate[local_code] = global_code
            chunk.codes = list(map(translate.__getitem__, chunk.codes))
            chunk.code_of = {}
            all_numeric = all_numeric and chunk.all_numeric
            store.put((name, chunk_index // chunk_rows), chunk)
        self.all_numeric = all_numeric
        #: Global code-table state, carried so appended values extend the
        #: table instead of re-encoding (:meth:`extend_values`).
        self.nan_code = nan_code
        self.next_code = next_code

    def chunk(self, index: int) -> BlockColumn:
        """The chunk covering rows ``[index * chunk_rows, ...)``."""
        return self._store.get((self.name, index))

    def extend_values(self, values: Sequence[FeatureValue], start: int) -> None:
        """Append raw values at global row ``start``, O(delta).

        New codes are assigned against the existing **global** table
        (first-occurrence order, canonical NaN slot); rows land in the tail
        chunk until it fills, then fresh chunks open.  Each touched chunk
        is re-:meth:`~ChunkStore.put`, which invalidates any stale spill
        file.
        """
        chunk_rows = self._chunk_rows
        codes, self.nan_code, self.next_code = _append_codes(
            self.code_of, values, self.nan_code, self.next_code
        )
        position = 0
        total = len(values)
        while position < total:
            chunk_index, offset = divmod(start + position, chunk_rows)
            take = min(chunk_rows - offset, total - position)
            if offset:
                chunk = self._store.get((self.name, chunk_index))
            else:
                chunk = BlockColumn(self.name, self.numeric)
                # from_values semantics on an empty column: vacuously true
                # for numeric columns, never set for nominal ones.
                chunk.all_numeric = self.numeric
            chunk.extend_encoded(
                values[position : position + take],
                codes[position : position + take],
            )
            self._store.put((self.name, chunk_index), chunk)
            self.all_numeric = self.all_numeric and chunk.all_numeric
            position += take

    def gather(self, source: str, indices: Sequence[int]) -> list:
        """One encoded array (``codes``/``floats``/...) at global indices.

        Same contract as :meth:`~repro.logs.store.BlockColumn.gather`.  Each
        referenced chunk is fetched from the store exactly once per call —
        positions are bucketed by chunk first — so even randomly-ordered
        index sets (balanced-sampled pairs) cost one load per chunk instead
        of one per element, and a tight ``max_resident`` never thrashes
        within one gather.
        """
        chunk_rows = self._chunk_rows
        indices = list(indices)
        gathered: list = [None] * len(indices)
        by_chunk: dict[int, list[int]] = {}
        for position, index in enumerate(indices):
            by_chunk.setdefault(index // chunk_rows, []).append(position)
        for chunk_index, positions in by_chunk.items():
            array = getattr(self.chunk(chunk_index), source)
            base = chunk_index * chunk_rows
            for position in positions:
                gathered[position] = array[indices[position] - base]
        return gathered


class ChunkedRecordBlock:
    """A record list encoded as fixed-size column chunks, spillable to disk.

    Drop-in for :class:`~repro.logs.store.RecordBlock`: the pair kernels
    read blocks only through ``records`` / ``ids`` / ``id_bytes`` /
    ``column()`` / ``key_chunks()`` / ``len()``, and every one of those is
    provided here with identical semantics.  Row ids stay fully resident
    (candidate subsampling hashes them constantly); encoded columns are
    chunked and at most ``max_resident_chunks`` of them stay in memory.
    """

    __slots__ = (
        "records",
        "schema",
        "ids",
        "id_bytes",
        "columns",
        "chunk_rows",
        "store",
        "group_cache",
    )

    def __init__(
        self,
        records: Sequence[ExecutionRecord],
        schema: "FeatureSchema",
        chunk_rows: int,
        max_resident_chunks: int | None = None,
        spill_directory: str | Path | None = None,
    ) -> None:
        if chunk_rows < 1:
            raise ValueError("chunk_rows must be >= 1")
        self.records: list[ExecutionRecord] = list(records)
        self.schema = schema
        self.ids: list[str] = [record.entity_id for record in self.records]
        self.id_bytes: list[bytes] = [
            entity_id.encode("utf-8") for entity_id in self.ids
        ]
        self.chunk_rows = chunk_rows
        self.store = ChunkStore(
            max_resident=max_resident_chunks, directory=spill_directory
        )
        self.columns: dict[str, ChunkedColumn] = {}
        #: Memoised blocking groups (same contract as
        #: :attr:`~repro.logs.store.RecordBlock.group_cache`).
        self.group_cache: dict[tuple[str, ...], dict[tuple, list[int]]] = {}

    def __len__(self) -> int:
        return len(self.records)

    @property
    def num_chunks(self) -> int:
        """Number of row partitions (the last one may be short)."""
        return -(-len(self.records) // self.chunk_rows)

    def column(self, name: str) -> ChunkedColumn:
        """The (lazily built) chunked encoded column of one raw feature.

        Lock-free publish-after-build, like
        :func:`~repro.logs.store._blocking_groups_of`: racing readers may
        encode the same column twice (deterministically identical — the
        loser's publish is a no-op overwrite) but never observe a
        partially-built one.
        """
        column = self.columns.get(name)
        if column is None:
            values = _column_values(self.records, name)
            column = ChunkedColumn(
                name,
                self.schema.is_numeric(name),
                values,
                self.store,
                self.chunk_rows,
            )
            self.columns[name] = column
        return column

    def key_chunks(
        self, features: Sequence[str]
    ) -> Iterable[tuple[int, list[Sequence[int]], list[Sequence[int]]]]:
        """``(start row, code slices, selfeq slices)`` per chunk.

        Same contract as :meth:`~repro.logs.store.RecordBlock.key_chunks`;
        codes are global, so keys assembled from different chunks compare
        exactly like a monolithic column's.
        """
        columns = [self.column(feature) for feature in features]
        for index in range(self.num_chunks):
            chunks = [column.chunk(index) for column in columns]
            yield (
                index * self.chunk_rows,
                [chunk.codes for chunk in chunks],
                [chunk.selfeq for chunk in chunks],
            )

    def blocking_groups(self, features: Sequence[str]) -> list[list[int]]:
        """Memoised blocking groups (same contract as
        :meth:`~repro.logs.store.RecordBlock.blocking_groups`)."""
        return _blocking_groups_of(self, features)

    def extend_from(self, records: Sequence[ExecutionRecord]) -> None:
        """Append records in O(delta): rows land in the tail chunk (or open
        a new one), global code tables extend in place, and cached blocking
        groups gain only the new rows' memberships (same contract as
        :meth:`~repro.logs.store.RecordBlock.extend_from`)."""
        records = list(records)
        if not records:
            return
        start = len(self.records)
        self.records.extend(records)
        new_ids = [record.entity_id for record in records]
        self.ids.extend(new_ids)
        self.id_bytes.extend(entity_id.encode("utf-8") for entity_id in new_ids)
        for name, column in self.columns.items():
            column.extend_values(_column_values(records, name), start)
        _extend_group_cache(self, start)
