"""Job and task execution records.

These follow the paper's schema:

* ``Job(JobID, feature_1, ..., feature_k, duration)``
* ``Task(TaskID, JobID, feature_1, ..., feature_l, duration)``

A feature value is a number, a string, a boolean, or ``None`` for missing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Union

from repro.exceptions import UnknownFeatureError

#: Value a raw feature may take; ``None`` marks a missing value.
FeatureValue = Union[int, float, str, bool, None]


def _validate_features(features: dict[str, FeatureValue]) -> None:
    for name, value in features.items():
        if not isinstance(name, str) or not name:
            raise ValueError(f"feature names must be non-empty strings, got {name!r}")
        if value is not None and not isinstance(value, (int, float, str, bool)):
            raise ValueError(
                f"feature {name!r} has unsupported value type {type(value).__name__}"
            )


@dataclass
class JobRecord:
    """One MapReduce job execution.

    :param job_id: unique Hadoop-style job identifier.
    :param features: raw feature vector (configuration parameters, data
        characteristics, counters, Ganglia averages, ...).
    :param duration: job wall-clock runtime in seconds (the performance
        metric explanations are about; never part of ``features``).
    """

    job_id: str
    features: dict[str, FeatureValue]
    duration: float

    def __post_init__(self) -> None:
        if not self.job_id:
            raise ValueError("job_id must be non-empty")
        if self.duration < 0:
            raise ValueError("duration must be >= 0")
        _validate_features(self.features)

    def get(self, feature: str) -> FeatureValue:
        """Value of a feature; raises :class:`UnknownFeatureError` if absent."""
        if feature not in self.features:
            raise UnknownFeatureError(feature, list(self.features))
        return self.features[feature]

    def feature_names(self) -> list[str]:
        """Names of all raw features, sorted."""
        return sorted(self.features)

    @property
    def entity_id(self) -> str:
        """Identifier used when the record participates in a pair."""
        return self.job_id


@dataclass
class TaskRecord:
    """One MapReduce task execution.

    :param task_id: unique Hadoop-style task identifier.
    :param job_id: identifier of the job the task belongs to.
    :param features: raw feature vector (log-file details plus Ganglia
        averages over the task's lifetime).
    :param duration: task wall-clock runtime in seconds.
    """

    task_id: str
    job_id: str
    features: dict[str, FeatureValue]
    duration: float

    def __post_init__(self) -> None:
        if not self.task_id:
            raise ValueError("task_id must be non-empty")
        if not self.job_id:
            raise ValueError("job_id must be non-empty")
        if self.duration < 0:
            raise ValueError("duration must be >= 0")
        _validate_features(self.features)

    def get(self, feature: str) -> FeatureValue:
        """Value of a feature; raises :class:`UnknownFeatureError` if absent."""
        if feature not in self.features:
            raise UnknownFeatureError(feature, list(self.features))
        return self.features[feature]

    def feature_names(self) -> list[str]:
        """Names of all raw features, sorted."""
        return sorted(self.features)

    @property
    def entity_id(self) -> str:
        """Identifier used when the record participates in a pair."""
        return self.task_id


#: Either kind of execution record.
ExecutionRecord = Union[JobRecord, TaskRecord]


def record_to_dict(record: ExecutionRecord) -> dict[str, Any]:
    """Serialise a record to a JSON-compatible dictionary."""
    payload: dict[str, Any] = {
        "features": dict(record.features),
        "duration": record.duration,
    }
    if isinstance(record, JobRecord):
        payload["kind"] = "job"
        payload["job_id"] = record.job_id
    else:
        payload["kind"] = "task"
        payload["task_id"] = record.task_id
        payload["job_id"] = record.job_id
    return payload


def record_from_dict(payload: dict[str, Any]) -> ExecutionRecord:
    """Inverse of :func:`record_to_dict`."""
    kind = payload.get("kind")
    if kind == "job":
        return JobRecord(
            job_id=payload["job_id"],
            features=dict(payload["features"]),
            duration=float(payload["duration"]),
        )
    if kind == "task":
        return TaskRecord(
            task_id=payload["task_id"],
            job_id=payload["job_id"],
            features=dict(payload["features"]),
            duration=float(payload["duration"]),
        )
    raise ValueError(f"unknown record kind: {kind!r}")
