"""Parsers for the log formats emitted by :mod:`repro.logs.writer`.

Two formats are read here:

* the Hadoop job-history-style text format
  (:func:`parse_job_history`) — deliberately forgiving about unknown
  record types and attributes (real job-history files carry many more
  event lines than we emit), but strict about malformed attribute syntax
  and missing mandatory fields;
* the JSONL execution-log format (:func:`read_records_jsonl`) — one JSON
  record per line, transparently gzip-decompressed for ``.jsonl.gz``
  paths.

Both raise :class:`~repro.exceptions.LogFormatError` with the offending
line number on malformed input.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from repro.exceptions import LogFormatError
from repro.logs.records import (
    FeatureValue,
    JobRecord,
    TaskRecord,
    record_from_dict,
)
from repro.logs.writer import JSONL_FORMAT, JSONL_VERSION, open_log_text

_ATTRIBUTE_RE = re.compile(r'([A-Z_]+)="((?:[^"\\]|\\.)*)"')
_LINE_RE = re.compile(r"^([A-Za-z]+)\s+(.*?)\s*\.?\s*$")


def _unescape(value: str) -> str:
    return value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")


def _decode_value(type_tag: str, text: str) -> FeatureValue:
    if type_tag == "null":
        return None
    if type_tag == "bool":
        return text == "true"
    if type_tag == "int":
        return int(text)
    if type_tag == "float":
        return float(text)
    if type_tag == "str":
        return text
    raise LogFormatError(f"unknown feature type tag: {type_tag!r}")


def _parse_line(line: str, line_number: int) -> tuple[str, dict[str, str]] | None:
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    match = _LINE_RE.match(stripped)
    if not match:
        raise LogFormatError(f"line {line_number}: malformed record: {line!r}")
    record_type, body = match.group(1), match.group(2)
    attributes = {key: _unescape(value) for key, value in _ATTRIBUTE_RE.findall(body)}
    return record_type, attributes


def parse_job_history_text(text: str) -> tuple[JobRecord, list[TaskRecord]]:
    """Parse one job-history document into a job record and its tasks."""
    job_attributes: dict[str, str] | None = None
    job_features: dict[str, FeatureValue] = {}
    task_order: list[str] = []
    task_attributes: dict[str, dict[str, str]] = {}
    task_features: dict[str, dict[str, FeatureValue]] = {}
    config: dict[str, str] = {}

    for line_number, line in enumerate(text.splitlines(), start=1):
        parsed = _parse_line(line, line_number)
        if parsed is None:
            continue
        record_type, attributes = parsed
        if record_type == "Meta":
            continue
        if record_type == "Job":
            if job_attributes is not None:
                raise LogFormatError(
                    f"line {line_number}: multiple Job lines in one history file"
                )
            job_attributes = attributes
        elif record_type == "JobConf":
            key = attributes.get("KEY")
            if key:
                config[key] = attributes.get("VALUE", "")
        elif record_type == "Task":
            task_id = attributes.get("TASKID")
            if not task_id:
                raise LogFormatError(f"line {line_number}: Task line without TASKID")
            if task_id in task_attributes:
                raise LogFormatError(f"line {line_number}: duplicate task {task_id}")
            task_order.append(task_id)
            task_attributes[task_id] = attributes
            task_features[task_id] = {}
        elif record_type == "Feature":
            scope = attributes.get("SCOPE")
            owner = attributes.get("OWNER")
            name = attributes.get("NAME")
            if not name or not owner:
                raise LogFormatError(f"line {line_number}: Feature line missing NAME/OWNER")
            value = _decode_value(attributes.get("TYPE", "str"), attributes.get("VALUE", ""))
            if scope == "job":
                job_features[name] = value
            elif scope == "task":
                if owner not in task_features:
                    raise LogFormatError(
                        f"line {line_number}: Feature for unknown task {owner}"
                    )
                task_features[owner][name] = value
            else:
                raise LogFormatError(f"line {line_number}: unknown feature scope {scope!r}")
        # Unknown record types are ignored on purpose.

    if job_attributes is None:
        raise LogFormatError("history file does not contain a Job line")
    job_id = job_attributes.get("JOBID")
    if not job_id:
        raise LogFormatError("Job line is missing JOBID")
    try:
        duration = float(job_attributes.get("DURATION", "nan"))
    except ValueError as exc:
        raise LogFormatError("Job line has a non-numeric DURATION") from exc
    if duration != duration:  # NaN check
        raise LogFormatError("Job line is missing DURATION")

    job = JobRecord(job_id=job_id, features=job_features, duration=duration)
    tasks: list[TaskRecord] = []
    for task_id in task_order:
        attributes = task_attributes[task_id]
        try:
            task_duration = float(attributes.get("DURATION", "nan"))
        except ValueError as exc:
            raise LogFormatError(f"task {task_id} has a non-numeric DURATION") from exc
        if task_duration != task_duration:
            raise LogFormatError(f"task {task_id} is missing DURATION")
        tasks.append(
            TaskRecord(
                task_id=task_id,
                job_id=attributes.get("JOBID", job_id),
                features=task_features[task_id],
                duration=task_duration,
            )
        )
    return job, tasks


def parse_job_history(path: str | Path) -> tuple[JobRecord, list[TaskRecord]]:
    """Parse a job-history file from disk."""
    return parse_job_history_text(Path(path).read_text(encoding="utf-8"))


def _jsonl_record(payload: object, line_number: int) -> JobRecord | TaskRecord | None:
    """One parsed JSONL line -> a record, or ``None`` for the meta header."""
    if not isinstance(payload, dict):
        raise LogFormatError(
            f"line {line_number}: expected a JSON object, got "
            f"{type(payload).__name__}"
        )
    if payload.get("kind") == "meta":
        log_format = payload.get("format", JSONL_FORMAT)
        if log_format != JSONL_FORMAT:
            raise LogFormatError(
                f"line {line_number}: unknown JSONL log format {log_format!r}"
            )
        version = payload.get("version", JSONL_VERSION)
        if version != JSONL_VERSION:
            raise LogFormatError(
                f"line {line_number}: unsupported JSONL log version {version!r}"
            )
        return None
    try:
        return record_from_dict(payload)
    except (KeyError, TypeError, ValueError) as exc:
        raise LogFormatError(f"line {line_number}: invalid record: {exc}") from exc


def parse_jsonl_line(line: str, line_number: int = 0) -> JobRecord | TaskRecord | None:
    """Parse one line of a JSONL execution log into a record.

    Returns ``None`` for blank lines and the optional ``meta`` header, so
    a tailer can feed every line of a growing file through unchanged.

    :raises LogFormatError: for invalid JSON or a malformed record;
        ``line_number`` (when given) is named in the message.
    """
    stripped = line.strip()
    if not stripped:
        return None
    try:
        payload = json.loads(stripped)
    except json.JSONDecodeError as exc:
        raise LogFormatError(f"line {line_number}: invalid JSON: {exc}") from exc
    return _jsonl_record(payload, line_number)


def read_records_jsonl(path: str | Path) -> tuple[list[JobRecord], list[TaskRecord]]:
    """Read a JSONL execution log (plain or ``.gz``) into record lists.

    The inverse of :func:`repro.logs.writer.write_records_jsonl`.  Blank
    lines are skipped and the ``meta`` header is optional, so plain
    record-per-line files parse too.
    """
    jobs: list[JobRecord] = []
    tasks: list[TaskRecord] = []
    try:
        with open_log_text(path, "r") as handle:
            for line_number, line in enumerate(handle, start=1):
                stripped = line.strip()
                if not stripped:
                    continue
                try:
                    payload = json.loads(stripped)
                except json.JSONDecodeError as exc:
                    raise LogFormatError(
                        f"line {line_number}: invalid JSON: {exc}"
                    ) from exc
                record = _jsonl_record(payload, line_number)
                if isinstance(record, JobRecord):
                    jobs.append(record)
                elif isinstance(record, TaskRecord):
                    tasks.append(record)
    except FileNotFoundError:
        raise
    except (OSError, EOFError) as exc:
        # gzip.BadGzipFile (truncated or mislabeled .gz files) is an OSError.
        raise LogFormatError(f"cannot read JSONL log {path}: {exc}") from exc
    return jobs, tasks
