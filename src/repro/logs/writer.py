"""Writer for Hadoop job-history-style log files.

Hadoop 0.20-era job history files are sequences of lines of the form
``RECORD_TYPE ATTR="value" ATTR="value" ... .`` — one line per job, task or
attempt event, plus the job configuration.  We emit the same shape so that
feature extraction in this repository exercises a genuine text-parsing
path, as it would against real Hadoop logs:

* a ``Meta`` line with the format version,
* a ``Job`` line with identifiers, timings and task counts,
* one ``JobConf`` line per configuration property,
* one ``Feature`` line per job-level raw feature,
* a ``Task`` line plus ``Feature`` lines per task.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.logs.records import FeatureValue, JobRecord, TaskRecord

FORMAT_VERSION = "1"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _encode_value(value: FeatureValue) -> tuple[str, str]:
    """Encode a feature value as (type tag, string form)."""
    if value is None:
        return "null", ""
    if isinstance(value, bool):
        return "bool", "true" if value else "false"
    if isinstance(value, int):
        return "int", str(value)
    if isinstance(value, float):
        return "float", repr(value)
    return "str", str(value)


def _line(record_type: str, attributes: dict[str, str]) -> str:
    rendered = " ".join(f'{key}="{_escape(value)}"' for key, value in attributes.items())
    return f"{record_type} {rendered} ."


def _feature_lines(scope: str, owner_id: str, features: dict[str, FeatureValue]) -> list[str]:
    lines = []
    for name in sorted(features):
        type_tag, encoded = _encode_value(features[name])
        lines.append(
            _line(
                "Feature",
                {
                    "SCOPE": scope,
                    "OWNER": owner_id,
                    "NAME": name,
                    "TYPE": type_tag,
                    "VALUE": encoded,
                },
            )
        )
    return lines


def job_history_text(
    job: JobRecord,
    tasks: Iterable[TaskRecord] = (),
    config_properties: dict[str, str] | None = None,
) -> str:
    """Render one job (and its tasks) in the job-history text format."""
    lines = [_line("Meta", {"VERSION": FORMAT_VERSION})]
    lines.append(
        _line(
            "Job",
            {
                "JOBID": job.job_id,
                "JOBNAME": str(job.features.get("pig_script", job.job_id)),
                "DURATION": repr(float(job.duration)),
                "JOB_STATUS": "SUCCESS",
            },
        )
    )
    for key in sorted(config_properties or {}):
        lines.append(_line("JobConf", {"KEY": key, "VALUE": str(config_properties[key])}))
    lines.extend(_feature_lines("job", job.job_id, job.features))
    for task in tasks:
        lines.append(
            _line(
                "Task",
                {
                    "TASKID": task.task_id,
                    "JOBID": task.job_id,
                    "TASK_TYPE": str(task.features.get("task_type", "MAP")),
                    "DURATION": repr(float(task.duration)),
                    "TASK_STATUS": "SUCCESS",
                },
            )
        )
        lines.extend(_feature_lines("task", task.task_id, task.features))
    return "\n".join(lines) + "\n"


def write_job_history(
    path: str | Path,
    job: JobRecord,
    tasks: Iterable[TaskRecord] = (),
    config_properties: dict[str, str] | None = None,
) -> Path:
    """Write one job's history file; returns the path written."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(job_history_text(job, tasks, config_properties), encoding="utf-8")
    return target
