"""Writer for Hadoop job-history-style log files.

Hadoop 0.20-era job history files are sequences of lines of the form
``RECORD_TYPE ATTR="value" ATTR="value" ... .`` — one line per job, task or
attempt event, plus the job configuration.  We emit the same shape so that
feature extraction in this repository exercises a genuine text-parsing
path, as it would against real Hadoop logs:

* a ``Meta`` line with the format version,
* a ``Job`` line with identifiers, timings and task counts,
* one ``JobConf`` line per configuration property,
* one ``Feature`` line per job-level raw feature,
* a ``Task`` line plus ``Feature`` lines per task.

The module also owns the **JSONL execution-log format** used for large
production logs: one JSON object per line (a ``meta`` header followed by
every job and task record), streamable, and transparently gzip-compressed
when the path ends in ``.gz`` (:func:`open_log_text` is the shared
suffix-dispatching opener; :func:`write_records_jsonl` the writer; the
matching reader lives in :func:`repro.logs.parser.read_records_jsonl`).
:meth:`repro.logs.store.ExecutionLog.save` picks the format from the file
suffix, so ``log.save("big.jsonl.gz")`` just works.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import IO, Iterable, Iterator

from repro.logs.records import FeatureValue, JobRecord, TaskRecord, record_to_dict

FORMAT_VERSION = "1"

#: Format tag stamped into the first line of a JSONL execution log.
JSONL_FORMAT = "perfxplain-log"
#: Version of the JSONL record layout.
JSONL_VERSION = 1

#: Every file suffix the execution-log persistence layer understands,
#: longest first.  The single source of truth for suffix knowledge: keep
#: in sync with :meth:`repro.logs.store.ExecutionLog.save` dispatch when
#: adding a format.  Callers (e.g. the CLI deriving catalog names from
#: bare paths) strip these rather than re-encoding the list.
LOG_SUFFIXES = (".jsonl.gz", ".json.gz", ".jsonl", ".json")


def open_log_text(path: str | Path, mode: str) -> IO[str]:
    """Open a log file for text I/O, transparently gzipped for ``.gz`` paths.

    :param mode: ``"r"`` or ``"w"`` (text mode is implied).
    """
    target = Path(path)
    if target.suffix == ".gz":
        return gzip.open(target, mode + "t", encoding="utf-8")
    return open(target, mode, encoding="utf-8")


def iter_jsonl_lines(
    jobs: Iterable[JobRecord], tasks: Iterable[TaskRecord] = ()
) -> Iterator[str]:
    """The lines of a JSONL execution log (without trailing newlines).

    The first line is a ``meta`` header carrying the format tag and
    version; every following line is one record in its
    :func:`~repro.logs.records.record_to_dict` form.
    """
    yield json.dumps(
        {"kind": "meta", "format": JSONL_FORMAT, "version": JSONL_VERSION},
        sort_keys=True,
    )
    for job in jobs:
        yield json.dumps(record_to_dict(job), sort_keys=True)
    for task in tasks:
        yield json.dumps(record_to_dict(task), sort_keys=True)


def write_records_jsonl(
    path: str | Path,
    jobs: Iterable[JobRecord],
    tasks: Iterable[TaskRecord] = (),
) -> Path:
    """Write job/task records as a JSONL execution log; returns the path.

    Gzip compression is applied automatically when the path ends in
    ``.gz`` (so ``log.jsonl.gz`` round-trips through
    :func:`repro.logs.parser.read_records_jsonl` unchanged).
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with open_log_text(target, "w") as handle:
        for line in iter_jsonl_lines(jobs, tasks):
            handle.write(line)
            handle.write("\n")
    return target


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _encode_value(value: FeatureValue) -> tuple[str, str]:
    """Encode a feature value as (type tag, string form)."""
    if value is None:
        return "null", ""
    if isinstance(value, bool):
        return "bool", "true" if value else "false"
    if isinstance(value, int):
        return "int", str(value)
    if isinstance(value, float):
        return "float", repr(value)
    return "str", str(value)


def _line(record_type: str, attributes: dict[str, str]) -> str:
    rendered = " ".join(f'{key}="{_escape(value)}"' for key, value in attributes.items())
    return f"{record_type} {rendered} ."


def _feature_lines(scope: str, owner_id: str, features: dict[str, FeatureValue]) -> list[str]:
    lines = []
    for name in sorted(features):
        type_tag, encoded = _encode_value(features[name])
        lines.append(
            _line(
                "Feature",
                {
                    "SCOPE": scope,
                    "OWNER": owner_id,
                    "NAME": name,
                    "TYPE": type_tag,
                    "VALUE": encoded,
                },
            )
        )
    return lines


def job_history_text(
    job: JobRecord,
    tasks: Iterable[TaskRecord] = (),
    config_properties: dict[str, str] | None = None,
) -> str:
    """Render one job (and its tasks) in the job-history text format."""
    lines = [_line("Meta", {"VERSION": FORMAT_VERSION})]
    lines.append(
        _line(
            "Job",
            {
                "JOBID": job.job_id,
                "JOBNAME": str(job.features.get("pig_script", job.job_id)),
                "DURATION": repr(float(job.duration)),
                "JOB_STATUS": "SUCCESS",
            },
        )
    )
    for key in sorted(config_properties or {}):
        lines.append(_line("JobConf", {"KEY": key, "VALUE": str(config_properties[key])}))
    lines.extend(_feature_lines("job", job.job_id, job.features))
    for task in tasks:
        lines.append(
            _line(
                "Task",
                {
                    "TASKID": task.task_id,
                    "JOBID": task.job_id,
                    "TASK_TYPE": str(task.features.get("task_type", "MAP")),
                    "DURATION": repr(float(task.duration)),
                    "TASK_STATUS": "SUCCESS",
                },
            )
        )
        lines.extend(_feature_lines("task", task.task_id, task.features))
    return "\n".join(lines) + "\n"


def write_job_history(
    path: str | Path,
    job: JobRecord,
    tasks: Iterable[TaskRecord] = (),
    config_properties: dict[str, str] | None = None,
) -> Path:
    """Write one job's history file; returns the path written."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(job_history_text(job, tasks, config_properties), encoding="utf-8")
    return target
