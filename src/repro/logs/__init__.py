"""Execution-log substrate.

PerfXplain consumes a *log of past MapReduce job executions*: one record per
job and one per task, each a flat vector of raw features plus a duration.
This package provides:

* :mod:`repro.logs.records` — :class:`JobRecord` and :class:`TaskRecord`;
* :mod:`repro.logs.store` — :class:`ExecutionLog`, the in-memory store with
  filtering, train/test splitting, JSON persistence, O(1) id lookup and the
  cached :class:`RecordBlock` columnar encoding the pair kernels run on;
* :mod:`repro.logs.chunkstore` — :class:`ChunkedRecordBlock`, the same
  encoding partitioned into fixed-size chunks with an LRU-pinned,
  spill-to-disk working set for million-task logs;
* :mod:`repro.logs.writer` / :mod:`repro.logs.parser` — a Hadoop
  job-history-style textual format and its parser, so that the feature
  extraction path mirrors parsing real Hadoop logs.
"""

from repro.logs.records import JobRecord, TaskRecord, FeatureValue
from repro.logs.store import BlockColumn, BlockOptions, ExecutionLog, RecordBlock
from repro.logs.chunkstore import ChunkedColumn, ChunkedRecordBlock, ChunkStore
from repro.logs.writer import write_job_history, job_history_text
from repro.logs.parser import parse_job_history, parse_job_history_text, parse_jsonl_line

__all__ = [
    "JobRecord",
    "TaskRecord",
    "FeatureValue",
    "BlockColumn",
    "BlockOptions",
    "ChunkStore",
    "ChunkedColumn",
    "ChunkedRecordBlock",
    "ExecutionLog",
    "RecordBlock",
    "write_job_history",
    "job_history_text",
    "parse_job_history",
    "parse_job_history_text",
    "parse_jsonl_line",
]
