"""The execution log: PerfXplain's training data store.

An :class:`ExecutionLog` holds job and task records, supports filtering
(e.g. "only the simple-groupby.pig jobs" for the Section 6.5 experiment),
random job-level train/test splits (the paper's repeated 2-fold
cross-validation splits *jobs*, carrying each job's tasks with it), and JSON
persistence.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

from repro.exceptions import LogFormatError
from repro.logs.records import (
    FeatureValue,
    JobRecord,
    TaskRecord,
    record_from_dict,
    record_to_dict,
)


@dataclass
class ExecutionLog:
    """A log of past MapReduce job and task executions."""

    jobs: list[JobRecord] = field(default_factory=list)
    tasks: list[TaskRecord] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def add_job(self, job: JobRecord, tasks: Iterable[TaskRecord] = ()) -> None:
        """Add a job record and (optionally) its task records."""
        if any(existing.job_id == job.job_id for existing in self.jobs):
            raise ValueError(f"duplicate job id: {job.job_id}")
        self.jobs.append(job)
        for task in tasks:
            self.add_task(task)

    def add_task(self, task: TaskRecord) -> None:
        """Add a single task record."""
        if any(existing.task_id == task.task_id for existing in self.tasks):
            raise ValueError(f"duplicate task id: {task.task_id}")
        self.tasks.append(task)

    def merge(self, other: "ExecutionLog") -> "ExecutionLog":
        """Return a new log containing the records of both logs."""
        merged = ExecutionLog(jobs=list(self.jobs), tasks=list(self.tasks))
        for job in other.jobs:
            if merged.find_job(job.job_id) is None:
                merged.jobs.append(job)
        existing_tasks = {task.task_id for task in merged.tasks}
        for task in other.tasks:
            if task.task_id not in existing_tasks:
                merged.tasks.append(task)
        return merged

    # ------------------------------------------------------------------ #
    # lookup and filtering
    # ------------------------------------------------------------------ #

    @property
    def num_jobs(self) -> int:
        """Number of job records."""
        return len(self.jobs)

    @property
    def num_tasks(self) -> int:
        """Number of task records."""
        return len(self.tasks)

    def find_job(self, job_id: str) -> JobRecord | None:
        """The job with the given id, or ``None``."""
        for job in self.jobs:
            if job.job_id == job_id:
                return job
        return None

    def find_task(self, task_id: str) -> TaskRecord | None:
        """The task with the given id, or ``None``."""
        for task in self.tasks:
            if task.task_id == task_id:
                return task
        return None

    def tasks_of_job(self, job_id: str) -> list[TaskRecord]:
        """All task records belonging to a job."""
        return [task for task in self.tasks if task.job_id == job_id]

    def filter_jobs(
        self, predicate: Callable[[JobRecord], bool], keep_tasks: bool = True
    ) -> "ExecutionLog":
        """A new log with only the jobs satisfying ``predicate``.

        :param keep_tasks: whether tasks of the kept jobs are carried over.
        """
        kept_jobs = [job for job in self.jobs if predicate(job)]
        kept_ids = {job.job_id for job in kept_jobs}
        kept_tasks = (
            [task for task in self.tasks if task.job_id in kept_ids] if keep_tasks else []
        )
        return ExecutionLog(jobs=kept_jobs, tasks=kept_tasks)

    def filter_by_feature(self, feature: str, value: FeatureValue) -> "ExecutionLog":
        """Jobs whose raw feature equals ``value`` (tasks carried over)."""
        return self.filter_jobs(lambda job: job.features.get(feature) == value)

    def job_feature_values(self, feature: str) -> list[FeatureValue]:
        """Values of one raw feature across all jobs (missing included)."""
        return [job.features.get(feature) for job in self.jobs]

    # ------------------------------------------------------------------ #
    # splitting
    # ------------------------------------------------------------------ #

    def split_train_test(
        self,
        train_fraction: float = 0.5,
        rng: random.Random | None = None,
        always_include_job_ids: Iterable[str] = (),
    ) -> tuple["ExecutionLog", "ExecutionLog"]:
        """Random job-level split into (train, test) logs.

        Every job is assigned to the training log with probability
        ``train_fraction`` (the paper: "we iterate through each job, add it
        to the training log with 50% probability, and all remaining jobs are
        added to the test log").  Jobs listed in ``always_include_job_ids``
        (e.g. the pair of interest) are placed in *both* logs so that the
        explanation can be applied to them on either side.
        """
        if not 0.0 < train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        rng = rng if rng is not None else random.Random(0)
        forced = set(always_include_job_ids)
        train = ExecutionLog()
        test = ExecutionLog()
        for job in self.jobs:
            tasks = self.tasks_of_job(job.job_id)
            if job.job_id in forced:
                train.add_job(job, tasks)
                test.add_job(job, tasks)
                continue
            if rng.random() < train_fraction:
                train.add_job(job, tasks)
            else:
                test.add_job(job, tasks)
        return train, test

    def sample_jobs(
        self, fraction: float, rng: random.Random | None = None,
        always_include_job_ids: Iterable[str] = (),
    ) -> "ExecutionLog":
        """A new log with a random subset of jobs (tasks carried over)."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        rng = rng if rng is not None else random.Random(0)
        forced = set(always_include_job_ids)
        subset = ExecutionLog()
        for job in self.jobs:
            if job.job_id in forced or rng.random() < fraction:
                subset.add_job(job, self.tasks_of_job(job.job_id))
        return subset

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #

    def to_json(self) -> str:
        """Serialise the log to a JSON string."""
        payload = {
            "jobs": [record_to_dict(job) for job in self.jobs],
            "tasks": [record_to_dict(task) for task in self.tasks],
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExecutionLog":
        """Parse a log previously produced by :meth:`to_json`."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise LogFormatError(f"invalid execution-log JSON: {exc}") from exc
        log = cls()
        for job_payload in payload.get("jobs", []):
            record = record_from_dict(job_payload)
            if not isinstance(record, JobRecord):
                raise LogFormatError("found a non-job record in the jobs section")
            log.jobs.append(record)
        for task_payload in payload.get("tasks", []):
            record = record_from_dict(task_payload)
            if not isinstance(record, TaskRecord):
                raise LogFormatError("found a non-task record in the tasks section")
            log.tasks.append(record)
        return log

    def save(self, path: str | Path) -> None:
        """Write the log to a JSON file."""
        Path(path).write_text(self.to_json(), encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "ExecutionLog":
        """Read a log from a JSON file."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))
