"""The execution log: PerfXplain's training data store.

An :class:`ExecutionLog` holds job and task records, supports filtering
(e.g. "only the simple-groupby.pig jobs" for the Section 6.5 experiment),
random job-level train/test splits (the paper's repeated 2-fold
cross-validation splits *jobs*, carrying each job's tasks with it), and JSON
persistence.

Record lookup by id (:meth:`ExecutionLog.find_job`,
:meth:`ExecutionLog.find_task`, :meth:`ExecutionLog.tasks_of_job`) runs on
lazily-built hash indexes.  Every cache (indexes and
:class:`RecordBlock` encodings) is keyed on an explicit per-kind **mutation
version counter** that each mutation API bumps
(:meth:`ExecutionLog.add_job`, :meth:`ExecutionLog.add_task`,
:meth:`ExecutionLog.extend`, :meth:`ExecutionLog.replace_job`,
:meth:`ExecutionLog.replace_task`), plus the record-list length as a
safety net for direct list appends.  In-place record *replacement* is
therefore supported through :meth:`ExecutionLog.replace_job` /
:meth:`ExecutionLog.replace_task` — the version bump guarantees no stale
index entry or :class:`RecordBlock` snapshot can ever be served.  Callers
who mutate the ``jobs``/``tasks`` lists in place directly (outside the
API) must call :meth:`ExecutionLog.invalidate_caches` afterwards.

This module also holds the first layer of the columnar pair pipeline: a
:class:`RecordBlock` encodes a whole record list column-by-column (per raw
feature: float values, numeric-eligibility and missing masks, and integer
value codes for exact-equality tests) so that the pair kernels in
:mod:`repro.core.pairkernel` can derive Table-1 pair features for millions
of candidate pairs in bulk instead of record-dict probing per pair.  Blocks
are built once per (entity kind, schema) and cached on the log
(:meth:`ExecutionLog.record_block`) under the same mutation-version key.

Concurrency contract: any number of threads may *read* one log at the same
time — every lazily-derived structure (id indexes, per-job task groups,
cached record blocks) is either filled under the log's internal derive
lock or published with a single atomic assignment, so concurrent readers
never observe a torn index or a half-extended block.  Mutations (appends,
replacement, :meth:`ExecutionLog.invalidate_caches`) are **not** made
concurrent here: they require exclusion from readers, which the service
layer provides with a per-log reader-writer lock
(:mod:`repro.service.catalog`; see ``docs/concurrency.md``).
"""

from __future__ import annotations

import json
import random
import threading
from dataclasses import dataclass, field
from operator import and_, eq
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from repro.exceptions import DuplicateRecordError, LogFormatError
from repro.logs.records import (
    ExecutionRecord,
    FeatureValue,
    JobRecord,
    TaskRecord,
    record_from_dict,
    record_to_dict,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.core.features import FeatureSchema

#: The performance metric pseudo-feature (mirrors
#: :data:`repro.core.features.PERFORMANCE_METRIC` without importing the
#: core layer from the logs layer).
_PERFORMANCE_METRIC = "duration"


# --------------------------------------------------------------------- #
# columnar record encoding (layer 1 of the pair pipeline)
# --------------------------------------------------------------------- #


class BlockColumn:
    """One raw feature's values across a record list, encoded for kernels.

    The encoding carries everything the pair kernels need to derive the
    Table-1 pair features of this raw feature for arbitrary ``(i, j)``
    index pairs without touching the record dicts again:

    * ``raw`` — the original values (``None`` = missing), for ``diff``
      strings and shared base values;
    * ``codes`` — integer value codes under dict equality (``-1`` =
      missing), so exact equality of two records is one integer compare;
    * ``selfeq`` — per-record flag ``value == value`` (present and not
      ``NaN``), the guard that keeps code equality faithful to ``==``;
    * ``floats`` / ``num_ok`` — numeric features only: the ``float`` image
      used by the tolerance/similarity rules and the per-record flag that
      the value really is numeric (bools are nominal by fiat).
    """

    __slots__ = (
        "name",
        "numeric",
        "raw",
        "codes",
        "selfeq",
        "floats",
        "num_ok",
        "all_numeric",
        "code_of",
        "nan_code",
        "next_code",
    )

    def __init__(self, name: str, numeric: bool) -> None:
        self.name = name
        self.numeric = numeric
        self.raw: list[FeatureValue] = []
        self.codes: list[int] = []
        self.selfeq: bytearray = bytearray()
        self.floats: list[float] = []
        self.num_ok: bytearray = bytearray()
        #: Every present value is numeric (lets kernels skip the
        #: mixed-type equality fallback).
        self.all_numeric: bool = False
        self.code_of: dict[FeatureValue, int] = {}
        #: The canonical NaN code (``-1`` = no NaN seen yet) and the next
        #: unassigned code — the state incremental appends extend from.
        self.nan_code: int = -1
        self.next_code: int = 0

    @classmethod
    def from_values(
        cls, name: str, values: Sequence[FeatureValue], numeric: bool
    ) -> "BlockColumn":
        """Encode one column of raw values (``None`` = missing).

        Code assignment runs as C pipelines: distinct values are collected
        with one ``set`` pass and codes are assigned by dict lookup mapped
        over the column.  Code *numbering* is therefore arbitrary — kernels
        only ever compare codes for equality, never for order.

        NaN gets one **canonical** code: ``set`` dedups NaN by object
        identity (``hash(nan)`` is id-based), so distinct NaN float objects
        would otherwise get distinct codes and code equality would silently
        depend on object identity.  ``selfeq`` masks NaN out of every
        kernel equality today, but canonical codes are what lets
        chunk-local code tables merge safely
        (:mod:`repro.logs.chunkstore`) and survive serialisation, which
        destroys object identity.
        """
        column = cls(name, numeric)
        n = len(values)
        raw = list(values)
        column.raw = raw
        distinct = set(raw)
        distinct.discard(None)
        code_of: dict[FeatureValue, int] = {}
        nan_objects = []
        for value in distinct:
            if value != value:
                nan_objects.append(value)
            else:
                code_of[value] = len(code_of)
        column.next_code = len(code_of)
        if nan_objects:
            # Every NaN object shares the canonical NaN code (the id-based
            # hashes still make each object an O(1) dict hit).
            nan_code = len(code_of)
            for value in nan_objects:
                code_of[value] = nan_code
            column.nan_code = nan_code
            column.next_code = nan_code + 1
        code_of[None] = -1
        codes = list(map(code_of.__getitem__, raw))
        del code_of[None]
        column.code_of = code_of
        column.codes = codes
        present_mask = list(map((-1).__lt__, codes))
        # ``value == value`` is false only for NaN (and None == None is
        # masked out by presence).
        column.selfeq = bytearray(map(and_, present_mask, map(eq, raw, raw)))
        present = sum(present_mask)
        if numeric:
            # Kinds come from the full column, not ``distinct``: the set
            # dedups ``True`` against ``1``, which could hide a bool.
            kinds = set(map(type, raw))
            kinds.discard(type(None))
            if kinds <= {int, float}:
                # Purely numeric column (bool is type-distinct from int):
                # one C conversion pass; NaN stays float-eligible exactly
                # like the isinstance path.
                if present == n:
                    column.floats = list(map(float, raw))
                    column.num_ok = bytearray(b"\x01") * n
                else:
                    column.floats = [
                        0.0 if value is None else float(value) for value in raw
                    ]
                    column.num_ok = bytearray(present_mask)
                column.all_numeric = True
                return column
            floats = [0.0] * n
            ok = bytearray(n)
            numeric_count = 0
            for index, value in enumerate(raw):
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    floats[index] = float(value)
                    ok[index] = 1
                    numeric_count += 1
            column.floats = floats
            column.num_ok = ok
            column.all_numeric = numeric_count == present
        return column

    def __len__(self) -> int:
        return len(self.raw)

    def gather(self, source: str, indices: Sequence[int]) -> list:
        """One encoded array (``codes``/``floats``/...) at ``indices``.

        The kernels' only read path into a column: routing gathers through
        the column lets :class:`~repro.logs.chunkstore.ChunkedColumn`
        substitute per-chunk arrays behind the same call.
        """
        return list(map(getattr(self, source).__getitem__, indices))

    def extend_encoded(self, values: Sequence[FeatureValue], codes: Sequence[int]) -> None:
        """Append pre-coded values, maintaining every derived array.

        ``codes`` must have been assigned against this column's code table
        (:func:`_append_codes`); the per-value ``selfeq`` / ``floats`` /
        ``num_ok`` updates follow exactly the rules of :meth:`from_values`,
        so an extended column is indistinguishable from a fresh build over
        the concatenated values (the differential suite pins this).
        """
        self.raw.extend(values)
        self.codes.extend(codes)
        selfeq = self.selfeq
        for value, code in zip(values, codes):
            selfeq.append(1 if code >= 0 and value == value else 0)
        if self.numeric:
            floats = self.floats
            num_ok = self.num_ok
            present = 0
            numeric_count = 0
            for value, code in zip(values, codes):
                if code >= 0:
                    present += 1
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    floats.append(float(value))
                    num_ok.append(1)
                    numeric_count += 1
                else:
                    floats.append(0.0)
                    num_ok.append(0)
            self.all_numeric = self.all_numeric and numeric_count == present

    def extend_values(self, values: Sequence[FeatureValue]) -> None:
        """Append raw values, extending the existing code table in place.

        The O(delta) append path: only the new values are scanned; codes of
        already-seen values come from the existing ``code_of`` table and
        unseen values get fresh sequential codes (NaN keeps one canonical
        slot).  Code *numbering* may therefore differ from a fresh
        :meth:`from_values` over the concatenation — unobservable, since
        kernels only ever compare codes for equality.
        """
        codes, self.nan_code, self.next_code = _append_codes(
            self.code_of, values, self.nan_code, self.next_code
        )
        self.extend_encoded(values, codes)


def _append_codes(
    code_of: dict[FeatureValue, int],
    values: Sequence[FeatureValue],
    nan_code: int,
    next_code: int,
) -> tuple[list[int], int, int]:
    """Assign codes for appended values against an existing code table.

    Returns ``(codes, nan_code, next_code)``: the per-value codes (``-1``
    for ``None``), the possibly newly-allocated canonical NaN code, and the
    next free code.  ``code_of`` is extended in place, in first-occurrence
    order over the new values.
    """
    codes: list[int] = []
    append = codes.append
    for value in values:
        if value is None:
            append(-1)
            continue
        code = code_of.get(value)
        if code is None:
            if value != value:
                # Every NaN object maps onto the one canonical slot.
                if nan_code < 0:
                    nan_code = next_code
                    next_code += 1
                code = nan_code
            else:
                code = next_code
                next_code += 1
            code_of[value] = code
        append(code)
    return codes, nan_code, next_code


class RecordBlock:
    """A record list encoded column-by-column for the pair kernels.

    Columns are built lazily per raw feature (a query usually touches a
    handful of the schema), cached forever: blocks are only ever built for
    append-only logs via :meth:`ExecutionLog.record_block`, which keys the
    cache by record count.  ``duration`` reads the record's performance
    metric, mirroring :func:`repro.core.pairs.compute_pair_feature`.
    """

    __slots__ = ("records", "schema", "ids", "id_bytes", "columns", "group_cache")

    def __init__(self, records: Sequence[ExecutionRecord], schema: "FeatureSchema") -> None:
        self.records: list[ExecutionRecord] = list(records)
        self.schema = schema
        #: Entity id per row, plus its UTF-8 image for hash-based sampling.
        self.ids: list[str] = [record.entity_id for record in self.records]
        self.id_bytes: list[bytes] = [entity_id.encode("utf-8") for entity_id in self.ids]
        self.columns: dict[str, BlockColumn] = {}
        #: Memoised blocking groups per feature tuple (see
        #: :func:`_blocking_groups_of`); appends refresh only the groups
        #: whose keys gained members.
        self.group_cache: dict[tuple[str, ...], dict[tuple, list[int]]] = {}

    def __len__(self) -> int:
        return len(self.records)

    def column(self, name: str) -> BlockColumn:
        """The (lazily built) encoded column of one raw feature."""
        column = self.columns.get(name)
        if column is None:
            column = BlockColumn.from_values(
                name, _column_values(self.records, name), self.schema.is_numeric(name)
            )
            self.columns[name] = column
        return column

    def key_chunks(
        self, features: Sequence[str]
    ) -> Iterable[tuple[int, list[Sequence[int]], list[Sequence[int]]]]:
        """``(start row, code slices, selfeq slices)`` per partition.

        The partition-agnostic read path for blocking-group construction
        (:func:`repro.core.pairkernel.blocking_group_indices`): an
        in-memory block is one partition covering every row; a
        :class:`~repro.logs.chunkstore.ChunkedRecordBlock` yields one entry
        per chunk with global value codes.
        """
        columns = [self.column(feature) for feature in features]
        yield (
            0,
            [column.codes for column in columns],
            [column.selfeq for column in columns],
        )

    def blocking_groups(self, features: Sequence[str]) -> list[list[int]]:
        """Record indices grouped by blocked value codes (memoised).

        Same contract as
        :func:`repro.core.pairkernel.blocking_group_indices`, which
        delegates here: groups in first-occurrence order, rows with a
        missing or NaN blocked value dropped.  The group dict is cached per
        feature tuple and maintained in place by :meth:`extend_from`, so a
        growing log pays O(delta) per append instead of a full regroup.
        """
        return _blocking_groups_of(self, features)

    def extend_from(self, records: Sequence[ExecutionRecord]) -> None:
        """Append records in O(delta), maintaining every built structure.

        New rows extend ``records``/``ids``/``id_bytes``, every
        already-encoded column grows through
        :meth:`BlockColumn.extend_values` (existing code tables extended,
        never rebuilt), and cached blocking groups gain only the new rows'
        memberships.
        """
        records = list(records)
        if not records:
            return
        start = len(self.records)
        self.records.extend(records)
        new_ids = [record.entity_id for record in records]
        self.ids.extend(new_ids)
        self.id_bytes.extend(entity_id.encode("utf-8") for entity_id in new_ids)
        for name, column in self.columns.items():
            column.extend_values(_column_values(records, name))
        _extend_group_cache(self, start)


def _column_values(
    records: "Sequence[ExecutionRecord]", name: str
) -> list[FeatureValue]:
    """One raw column of a record list (the block encoding input)."""
    if name == _PERFORMANCE_METRIC:
        return [record.duration for record in records]
    return [record.features.get(name) for record in records]


#: Blocking-feature tuples memoised per block.  A realistic query mix uses
#: a handful of despite clauses per log; the cap only bounds adversarial
#: churn (each cached tuple holds O(rows) index lists).
MAX_GROUP_CACHE = 8


def _blocking_groups_of(block, features: Sequence[str]) -> list[list[int]]:
    """The memoised blocking groups of a block, as fresh index-list copies.

    Shared by :class:`RecordBlock` and
    :class:`~repro.logs.chunkstore.ChunkedRecordBlock` (both expose the
    ``key_chunks`` / ``group_cache`` surface this reads).  Returns copies so
    kernels that consume the lists destructively cannot corrupt the cache.

    Deliberately lock-free so forked kernel workers can call it without
    touching a parent-held lock: a cold key is built into a local dict and
    *published* with one atomic assignment.  Two racing readers may both
    build (identical, deterministic) groups — the loser's write is a
    harmless overwrite — and eviction tolerates a concurrent evictor
    having emptied the cache first.
    """
    key = tuple(features)
    cache = block.group_cache
    groups = cache.get(key)
    if groups is None:
        if len(cache) >= MAX_GROUP_CACHE:
            try:
                cache.pop(next(iter(cache)))
            except (StopIteration, KeyError, RuntimeError):
                pass
        groups = {}
        for start, code_slices, selfeq_slices in block.key_chunks(features):
            for offset, codes in enumerate(zip(*code_slices)):
                if -1 in codes:
                    continue
                if not all(selfeq[offset] for selfeq in selfeq_slices):
                    continue
                groups.setdefault(codes, []).append(start + offset)
        cache[key] = groups
    return [list(group) for group in groups.values()]


def _extend_group_cache(block, start: int) -> None:
    """Add rows ``[start, len(block))`` to every cached blocking group.

    Only groups whose keys gained members are touched; first-occurrence
    order is preserved because new keys land at the end of the group dict,
    exactly where a fresh regroup would place them.
    """
    n = len(block.records)
    if start >= n or not block.group_cache:
        return
    rows = range(start, n)
    for features, groups in block.group_cache.items():
        columns = [block.column(feature) for feature in features]
        code_rows = zip(*(column.gather("codes", rows) for column in columns))
        selfeq_rows = zip(*(column.gather("selfeq", rows) for column in columns))
        for offset, (codes, selfeq) in enumerate(zip(code_rows, selfeq_rows)):
            if -1 in codes:
                continue
            if not all(selfeq):
                continue
            groups.setdefault(codes, []).append(start + offset)


def _schema_signature(schema: "FeatureSchema") -> tuple:
    """A hashable fingerprint of a schema (name/kind pairs, sorted)."""
    return tuple(sorted((name, spec.kind.value) for name, spec in schema.specs.items()))


#: Newest record blocks kept per entity kind.  A long-lived catalog log
#: queried under evolving schemas would otherwise retain one block per
#: distinct ``(kind, schema fingerprint)`` forever.
MAX_BLOCKS_PER_KIND = 4

#: Record count at which :meth:`ExecutionLog.record_block` switches to a
#: chunked block automatically (overridable per log via
#: :meth:`ExecutionLog.configure_blocks`).
AUTO_CHUNK_THRESHOLD = 200_000

#: Rows per chunk when chunking is enabled without an explicit size.
DEFAULT_CHUNK_ROWS = 16_384


@dataclass(frozen=True)
class BlockOptions:
    """Per-log :class:`RecordBlock` construction policy.

    :param chunk_rows: fixed chunk size; ``None`` = chunk only past
        ``auto_chunk_threshold`` (at :data:`DEFAULT_CHUNK_ROWS` rows).
    :param max_resident_chunks: LRU-pinned working set of encoded column
        chunks; beyond it, chunks spill to disk.  ``None`` = never spill.
    :param spill_directory: parent directory for the spill files
        (``None`` = the system temp directory).
    :param auto_chunk_threshold: record count that triggers automatic
        chunking when ``chunk_rows`` is unset.
    """

    chunk_rows: int | None = None
    max_resident_chunks: int | None = None
    spill_directory: "str | Path | None" = None
    auto_chunk_threshold: int = AUTO_CHUNK_THRESHOLD


@dataclass
class ExecutionLog:
    """A log of past MapReduce job and task executions."""

    jobs: list[JobRecord] = field(default_factory=list)
    tasks: list[TaskRecord] = field(default_factory=list)
    #: Per-kind mutation version counters.  Every cache below is valid only
    #: for the (version, record count) it was built against.
    _jobs_version: int = field(default=0, init=False, repr=False, compare=False)
    _tasks_version: int = field(default=0, init=False, repr=False, compare=False)
    #: Per-kind *epoch* counters: bumped only by mutations that can change
    #: already-stored records (:meth:`replace_job`, :meth:`replace_task`,
    #: :meth:`invalidate_caches`).  Appends grow a kind without moving its
    #: epoch, which is what lets blocks, groups and session caches extend
    #: incrementally instead of rebuilding.
    _jobs_epoch: int = field(default=0, init=False, repr=False, compare=False)
    _tasks_epoch: int = field(default=0, init=False, repr=False, compare=False)
    _job_index: dict[str, JobRecord] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _job_index_key: tuple = field(default=(-1, -1), init=False, repr=False, compare=False)
    _task_index: dict[str, TaskRecord] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _task_index_key: tuple = field(default=(-1, -1), init=False, repr=False, compare=False)
    _job_tasks: dict[str, list[TaskRecord]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _job_tasks_key: tuple = field(default=(-1, -1), init=False, repr=False, compare=False)
    #: (kind, schema fingerprint) -> (mutation key, RecordBlock), in
    #: recency order; bounded to :data:`MAX_BLOCKS_PER_KIND` per kind.
    _blocks: dict[tuple, tuple[tuple, RecordBlock]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    #: Running [hits, misses, evictions] of the block cache.
    _block_counters: list[int] = field(
        default_factory=lambda: [0, 0, 0], init=False, repr=False, compare=False
    )
    #: Cached blocks refreshed in place by the O(delta) append path
    #: (:meth:`record_block` / :meth:`flush_appends`).
    _block_extends: int = field(default=0, init=False, repr=False, compare=False)
    _block_options: BlockOptions | None = field(
        default=None, init=False, repr=False, compare=False
    )
    #: Guards every lazily-derived structure above (id indexes, the
    #: per-job task groups, the block cache and its counters) so any
    #: number of *readers* can probe and fill them concurrently.
    #: Mutations of the record lists themselves are NOT covered: the
    #: concurrency contract is many readers / one exclusive writer,
    #: enforced above this layer (the service catalog's reader-writer
    #: lock) or by the embedding application.  Reentrant because
    #: :meth:`configure_blocks` flushes appends under the same lock.
    _derive_lock: threading.RLock = field(
        default_factory=threading.RLock, init=False, repr=False, compare=False
    )

    def _jobs_key(self) -> tuple:
        return (self._jobs_version, len(self.jobs))

    def _tasks_key(self) -> tuple:
        return (self._tasks_version, len(self.tasks))

    # ------------------------------------------------------------------ #
    # construction and mutation
    # ------------------------------------------------------------------ #

    def add_job(self, job: JobRecord, tasks: Iterable[TaskRecord] = ()) -> None:
        """Add a job record and (optionally) its task records."""
        index = self._job_lookup()
        if job.job_id in index:
            raise DuplicateRecordError(
                f"duplicate job id: {job.job_id}", kind="job", record_id=job.job_id
            )
        self.jobs.append(job)
        self._jobs_version += 1
        index[job.job_id] = job
        self._job_index_key = self._jobs_key()
        for task in tasks:
            self.add_task(task)

    def add_task(self, task: TaskRecord) -> None:
        """Add a single task record."""
        index = self._task_lookup()
        if task.task_id in index:
            raise DuplicateRecordError(
                f"duplicate task id: {task.task_id}", kind="task", record_id=task.task_id
            )
        self.tasks.append(task)
        self._tasks_version += 1
        index[task.task_id] = task
        self._task_index_key = self._tasks_key()

    def extend(
        self,
        jobs: Iterable[JobRecord] = (),
        tasks: Iterable[TaskRecord] = (),
    ) -> None:
        """Bulk-append record batches with one duplicate check per record.

        The sweep executor's emission path: whole per-job record batches
        land in the log with a single version bump per kind instead of one
        :meth:`add_task` round-trip per record.  Atomic: both batches are
        validated against the log (and against themselves) before any
        mutation, so a duplicate id
        (:class:`~repro.exceptions.DuplicateRecordError`) leaves the log
        untouched.
        """
        jobs = list(jobs)
        tasks = list(tasks)
        job_index = self._job_lookup() if jobs else self._job_index
        batch_job_ids: set[str] = set()
        for job in jobs:
            if job.job_id in job_index or job.job_id in batch_job_ids:
                raise DuplicateRecordError(
                    f"duplicate job id: {job.job_id}", kind="job", record_id=job.job_id
                )
            batch_job_ids.add(job.job_id)
        task_index = self._task_lookup() if tasks else self._task_index
        batch_task_ids: set[str] = set()
        for task in tasks:
            if task.task_id in task_index or task.task_id in batch_task_ids:
                raise DuplicateRecordError(
                    f"duplicate task id: {task.task_id}",
                    kind="task",
                    record_id=task.task_id,
                )
            batch_task_ids.add(task.task_id)
        if jobs:
            for job in jobs:
                job_index[job.job_id] = job
            self.jobs.extend(jobs)
            self._jobs_version += 1
            self._job_index_key = self._jobs_key()
        if tasks:
            for task in tasks:
                task_index[task.task_id] = task
            self.tasks.extend(tasks)
            self._tasks_version += 1
            self._task_index_key = self._tasks_key()

    def replace_job(self, job: JobRecord) -> None:
        """Replace the job record with the same id, in place.

        The mutation bumps the job version counter, so every cached view —
        the id index and any :class:`RecordBlock` built over the job list —
        is rebuilt on next access instead of serving the stale record.
        """
        for position, existing in enumerate(self.jobs):
            if existing.job_id == job.job_id:
                self.jobs[position] = job
                self._jobs_version += 1
                self._jobs_epoch += 1
                return
        raise ValueError(f"no job with id {job.job_id} to replace")

    def replace_task(self, task: TaskRecord) -> None:
        """Replace the task record with the same id, in place.

        Same cache-invalidation contract as :meth:`replace_job`.
        """
        for position, existing in enumerate(self.tasks):
            if existing.task_id == task.task_id:
                self.tasks[position] = task
                self._tasks_version += 1
                self._tasks_epoch += 1
                return
        raise ValueError(f"no task with id {task.task_id} to replace")

    def invalidate_caches(self) -> None:
        """Declare out-of-band mutation of the record lists.

        Callers that mutate ``jobs``/``tasks`` directly (slicing, sorting,
        in-place element assignment) must call this so the versioned caches
        are rebuilt; the mutation APIs above do it automatically.
        """
        self._jobs_version += 1
        self._tasks_version += 1
        self._jobs_epoch += 1
        self._tasks_epoch += 1

    def mutation_snapshot(self) -> dict[str, tuple[int, int, int]]:
        """Per-kind ``(epoch, version, count)`` triples, for cache owners.

        The session layer (:class:`~repro.core.api.PerfXplainSession`)
        compares snapshots across calls: an unchanged triple means a kind's
        caches are valid as-is; a moved count under the same epoch means
        append-only growth (caches touching that kind recompute, the other
        kind's survive); a moved epoch means in-place mutation (everything
        derived from that kind must be dropped).
        """
        return {
            "job": (self._jobs_epoch, self._jobs_version, len(self.jobs)),
            "task": (self._tasks_epoch, self._tasks_version, len(self.tasks)),
        }

    def append_stats(self) -> dict[str, int]:
        """Append/version accounting for catalog introspection.

        ``jobs_version`` / ``tasks_version`` move on every mutation of
        their kind; ``jobs_epoch`` / ``tasks_epoch`` only on in-place
        mutation; ``block_extends`` counts cached blocks refreshed through
        the O(delta) append path instead of a rebuild.
        """
        return {
            "jobs_version": self._jobs_version,
            "tasks_version": self._tasks_version,
            "jobs_epoch": self._jobs_epoch,
            "tasks_epoch": self._tasks_epoch,
            "block_extends": self._block_extends,
        }

    def merge(self, other: "ExecutionLog") -> "ExecutionLog":
        """Return a new log containing the records of both logs."""
        merged = ExecutionLog(jobs=list(self.jobs), tasks=list(self.tasks))
        existing_jobs = {job.job_id for job in merged.jobs}
        new_jobs: list[JobRecord] = []
        for job in other.jobs:
            if job.job_id not in existing_jobs:
                existing_jobs.add(job.job_id)
                new_jobs.append(job)
        existing_tasks = {task.task_id for task in merged.tasks}
        new_tasks: list[TaskRecord] = []
        for task in other.tasks:
            if task.task_id not in existing_tasks:
                existing_tasks.add(task.task_id)
                new_tasks.append(task)
        merged.extend(jobs=new_jobs, tasks=new_tasks)
        return merged

    # ------------------------------------------------------------------ #
    # lookup and filtering
    # ------------------------------------------------------------------ #

    @property
    def num_jobs(self) -> int:
        """Number of job records."""
        return len(self.jobs)

    @property
    def num_tasks(self) -> int:
        """Number of task records."""
        return len(self.tasks)

    def _job_lookup(self) -> dict[str, JobRecord]:
        """The id -> job index, rebuilt when the job version/length moves.

        ``setdefault`` preserves the first-match semantics of the previous
        linear scan if duplicate ids were ever injected by direct list
        mutation (the index then never reaches full length and is rebuilt
        per call, degrading to the old O(n) behaviour).

        Rebuilds are publish-after-build under the derive lock: a stale
        index is replaced by a freshly-built dict in one assignment, so a
        concurrent reader either sees the complete old index or the
        complete new one — never a half-filled ``clear()``-ed dict.
        """
        index = self._job_index
        if self._job_index_key == self._jobs_key() and len(index) == len(self.jobs):
            return index
        with self._derive_lock:
            index = self._job_index
            if self._job_index_key == self._jobs_key() and len(index) == len(self.jobs):
                return index
            rebuilt: dict[str, JobRecord] = {}
            for job in self.jobs:
                rebuilt.setdefault(job.job_id, job)
            self._job_index = rebuilt
            self._job_index_key = self._jobs_key()
            return rebuilt

    def _task_lookup(self) -> dict[str, TaskRecord]:
        """The id -> task index (same contract as :meth:`_job_lookup`)."""
        index = self._task_index
        if self._task_index_key == self._tasks_key() and len(index) == len(self.tasks):
            return index
        with self._derive_lock:
            index = self._task_index
            if self._task_index_key == self._tasks_key() and len(index) == len(self.tasks):
                return index
            rebuilt: dict[str, TaskRecord] = {}
            for task in self.tasks:
                rebuilt.setdefault(task.task_id, task)
            self._task_index = rebuilt
            self._task_index_key = self._tasks_key()
            return rebuilt

    def find_job(self, job_id: str) -> JobRecord | None:
        """The job with the given id, or ``None`` (O(1) amortised).

        Correct under appends and API-level replacement
        (:meth:`replace_job`); direct out-of-band list mutation requires
        :meth:`invalidate_caches` (see the module docstring).
        """
        return self._job_lookup().get(job_id)

    def find_task(self, task_id: str) -> TaskRecord | None:
        """The task with the given id, or ``None`` (O(1) amortised).

        Same cache contract as :meth:`find_job`.
        """
        return self._task_lookup().get(task_id)

    def tasks_of_job(self, job_id: str) -> list[TaskRecord]:
        """All task records belonging to a job (indexed, O(tasks of job)).

        The index is keyed on the task epoch plus record count: appends
        (API-level or direct list appends) fold only the new tasks into the
        existing groups, O(delta); in-place mutation (epoch moved) or
        shrinkage rebuilds from scratch.  The incremental fold copies each
        bucket it grows before publishing, so a concurrent reader holding
        the old groups dict never observes a list mutating under it; both
        fold and rebuild run under the derive lock (one builder per burst).
        """
        key = (self._tasks_epoch, len(self.tasks))
        if self._job_tasks_key == key:
            return list(self._job_tasks.get(job_id, ()))
        with self._derive_lock:
            key = (self._tasks_epoch, len(self.tasks))
            if self._job_tasks_key != key:
                cached_epoch, cached_count = self._job_tasks_key
                if cached_epoch == key[0] and 0 <= cached_count < len(self.tasks):
                    groups = dict(self._job_tasks)
                    touched: dict[str, list[TaskRecord]] = {}
                    for task in self.tasks[cached_count:]:
                        bucket = touched.get(task.job_id)
                        if bucket is None:
                            bucket = list(groups.get(task.job_id, ()))
                            touched[task.job_id] = bucket
                        bucket.append(task)
                    groups.update(touched)
                else:
                    groups = {}
                    for task in self.tasks:
                        groups.setdefault(task.job_id, []).append(task)
                self._job_tasks = groups
                self._job_tasks_key = key
            return list(self._job_tasks.get(job_id, ()))

    def filter_jobs(
        self, predicate: Callable[[JobRecord], bool], keep_tasks: bool = True
    ) -> "ExecutionLog":
        """A new log with only the jobs satisfying ``predicate``.

        :param keep_tasks: whether tasks of the kept jobs are carried over.
        """
        kept_jobs = [job for job in self.jobs if predicate(job)]
        kept_ids = {job.job_id for job in kept_jobs}
        kept_tasks = (
            [task for task in self.tasks if task.job_id in kept_ids] if keep_tasks else []
        )
        return ExecutionLog(jobs=kept_jobs, tasks=kept_tasks)

    def filter_by_feature(self, feature: str, value: FeatureValue) -> "ExecutionLog":
        """Jobs whose raw feature equals ``value`` (tasks carried over)."""
        return self.filter_jobs(lambda job: job.features.get(feature) == value)

    def job_feature_values(self, feature: str) -> list[FeatureValue]:
        """Values of one raw feature across all jobs (missing included)."""
        return [job.features.get(feature) for job in self.jobs]

    # ------------------------------------------------------------------ #
    # columnar encoding
    # ------------------------------------------------------------------ #

    def configure_blocks(
        self,
        chunk_rows: int | None = None,
        max_resident_chunks: int | None = None,
        spill_directory: "str | Path | None" = None,
        auto_chunk_threshold: int = AUTO_CHUNK_THRESHOLD,
    ) -> None:
        """Set this log's :class:`RecordBlock` construction policy.

        See :class:`BlockOptions` for the parameters.  When the policy
        actually changes, cached blocks are dropped so the new layout takes
        effect on the next :meth:`record_block` call; chunked and in-memory
        blocks are bit-identical to the kernels, so reconfiguring never
        changes results — only memory behaviour.  Re-applying the current
        policy keeps the cached blocks but flushes any pending un-encoded
        appends into them first (:meth:`flush_appends`): a kept block must
        never serve a stale tail.
        """
        if chunk_rows is not None and chunk_rows < 1:
            raise ValueError("chunk_rows must be >= 1")
        if max_resident_chunks is not None and max_resident_chunks < 1:
            raise ValueError("max_resident_chunks must be >= 1")
        options = BlockOptions(
            chunk_rows=chunk_rows,
            max_resident_chunks=max_resident_chunks,
            spill_directory=spill_directory,
            auto_chunk_threshold=auto_chunk_threshold,
        )
        with self._derive_lock:
            if options == self._block_options:
                self.flush_appends()
                return
            self._block_options = options
            self._blocks.clear()

    def block_cache_stats(self) -> dict[str, int]:
        """Accounting counters of the per-log record-block cache.

        Plain integers (not :class:`~repro.core.cache.CacheStats` — the
        logs layer does not import the core layer); the session adapter
        (:meth:`repro.core.api.PerfXplainSession.cache_stats`) wraps them.
        """
        with self._derive_lock:
            hits, misses, evictions = self._block_counters
            return {
                "hits": hits,
                "misses": misses,
                "evictions": evictions,
                "size": len(self._blocks),
                "capacity": 2 * MAX_BLOCKS_PER_KIND,
            }

    def record_block(self, schema: "FeatureSchema", kind: str = "job") -> RecordBlock:
        """The (cached) columnar :class:`RecordBlock` of one entity kind.

        Blocks are keyed by ``(kind, schema fingerprint)`` and invalidated
        by the kind's mutation version (plus record count, covering direct
        list appends): one build is shared by every query, clause signature
        and session touching the log, and any mutation — append, bulk
        extend or in-place :meth:`replace_job` / :meth:`replace_task` —
        replaces the stale block on the next request.

        Appends are O(delta): when a kind has only grown since a block was
        cached (same epoch, larger count) and the chunking layout is
        unchanged, the cached block is extended in place through
        :meth:`RecordBlock.extend_from` instead of rebuilt — per-column
        code tables, masks and cached blocking groups gain just the new
        rows.  In-place mutation (:meth:`replace_job` /
        :meth:`replace_task` / :meth:`invalidate_caches`) moves the kind's
        epoch and forces a full rebuild.

        The cache is bounded: stale entries of a kind are evicted when
        their epoch no longer matches the log, and only the
        :data:`MAX_BLOCKS_PER_KIND` most recently used schemas per kind are
        retained (:meth:`block_cache_stats` reports the counters).  Logs at
        or past the auto-chunk threshold — or explicitly configured via
        :meth:`configure_blocks` — get a
        :class:`~repro.logs.chunkstore.ChunkedRecordBlock` instead of a
        monolithic block; both present the same surface to the kernels.

        :param schema: the raw-feature schema to encode under.
        :param kind: ``"job"`` or ``"task"``.
        """
        if kind not in ("job", "task"):
            raise ValueError(f"kind must be 'job' or 'task', got {kind!r}")
        with self._derive_lock:
            records: Sequence[ExecutionRecord]
            if kind == "job":
                records = self.jobs
                mutation_key = (self._jobs_epoch, len(records))
            else:
                records = self.tasks
                mutation_key = (self._tasks_epoch, len(records))
            key = (kind, _schema_signature(schema))
            cached = self._blocks.get(key)
            if cached is not None:
                block = self._refresh_block(key, cached, records, mutation_key)
                if block is not None:
                    return block
            self._block_counters[1] += 1
            block = self._build_block(records, schema)
            if key in self._blocks:
                del self._blocks[key]
            self._blocks[key] = (mutation_key, block)
            self._evict_blocks(kind, mutation_key[0])
            return block

    def _refresh_block(
        self,
        key: tuple,
        cached: tuple[tuple, RecordBlock],
        records: "Sequence[ExecutionRecord]",
        mutation_key: tuple,
    ) -> RecordBlock | None:
        """Serve a cached block as-is or extended in place, else ``None``.

        A hit (unchanged mutation key) and an O(delta) extension (same
        epoch, grown count, unchanged chunk layout) both refresh recency;
        anything else — moved epoch, shrunk count, or a layout change such
        as crossing the auto-chunk threshold — returns ``None`` so the
        caller rebuilds.
        """
        if cached[0] == mutation_key:
            self._block_counters[0] += 1
            del self._blocks[key]
            self._blocks[key] = cached
            return cached[1]
        block = self._try_extend(cached, records, mutation_key)
        if block is not None:
            del self._blocks[key]
            self._blocks[key] = (mutation_key, block)
        return block

    def _try_extend(
        self,
        cached: tuple[tuple, RecordBlock],
        records: "Sequence[ExecutionRecord]",
        mutation_key: tuple,
    ) -> RecordBlock | None:
        """Extend a cached block in place when appends are all that changed."""
        cached_key, block = cached
        if (
            cached_key[0] != mutation_key[0]
            or cached_key[1] >= mutation_key[1]
            or self._chunk_layout_for(mutation_key[1])
            != getattr(block, "chunk_rows", None)
        ):
            return None
        block.extend_from(records[cached_key[1] :])
        self._block_extends += 1
        return block

    def _chunk_layout_for(self, count: int) -> int | None:
        """The chunk size a block over ``count`` records would get now."""
        options = self._block_options
        chunk_rows = options.chunk_rows if options is not None else None
        threshold = (
            options.auto_chunk_threshold if options is not None else AUTO_CHUNK_THRESHOLD
        )
        if chunk_rows is None and count >= threshold:
            chunk_rows = DEFAULT_CHUNK_ROWS
        return chunk_rows

    def flush_appends(self) -> int:
        """Fold pending appended records into every cached block, eagerly.

        :meth:`record_block` extends lazily on next access; this is the
        eager sync point — used by :meth:`configure_blocks` (a kept block
        must never serve a stale tail) and by the service's append path so
        encoding cost is paid at append time, off the query path.  Blocks
        that cannot be extended in place (moved epoch, shrunk count,
        changed chunk layout) are dropped for rebuild on next access.
        Returns the number of blocks extended.
        """
        refreshed = 0
        with self._derive_lock:
            for key in list(self._blocks):
                kind = key[0]
                if kind == "job":
                    records: Sequence[ExecutionRecord] = self.jobs
                    mutation_key = (self._jobs_epoch, len(records))
                else:
                    records = self.tasks
                    mutation_key = (self._tasks_epoch, len(records))
                cached = self._blocks[key]
                if cached[0] == mutation_key:
                    continue
                block = self._try_extend(cached, records, mutation_key)
                if block is not None:
                    self._blocks[key] = (mutation_key, block)
                    refreshed += 1
                else:
                    del self._blocks[key]
                    self._block_counters[2] += 1
        return refreshed

    def _build_block(
        self, records: "Sequence[ExecutionRecord]", schema: "FeatureSchema"
    ) -> RecordBlock:
        options = self._block_options
        chunk_rows = self._chunk_layout_for(len(records))
        if chunk_rows is None:
            return RecordBlock(records, schema)
        from repro.logs.chunkstore import ChunkedRecordBlock

        return ChunkedRecordBlock(
            records,
            schema,
            chunk_rows=chunk_rows,
            max_resident_chunks=(
                options.max_resident_chunks if options is not None else None
            ),
            spill_directory=(
                options.spill_directory if options is not None else None
            ),
        )

    def _evict_blocks(self, kind: str, epoch: int) -> None:
        """Drop unrecoverable blocks of a kind, keep the newest N others.

        A block merely behind on record count is *not* stale — the append
        path extends it in place on next access — but a moved epoch or a
        shrunk record list can never be reconciled incrementally.
        """
        count = len(self.jobs) if kind == "job" else len(self.tasks)
        stale = [
            key
            for key, (cached_key, _) in self._blocks.items()
            if key[0] == kind and (cached_key[0] != epoch or cached_key[1] > count)
        ]
        same_kind = [key for key in self._blocks if key[0] == kind and key not in stale]
        # dicts iterate oldest-first: surplus beyond the cap is the LRU end.
        surplus = len(same_kind) - MAX_BLOCKS_PER_KIND
        if surplus > 0:
            stale.extend(same_kind[:surplus])
        for key in stale:
            del self._blocks[key]
            self._block_counters[2] += 1

    # ------------------------------------------------------------------ #
    # splitting
    # ------------------------------------------------------------------ #

    def split_train_test(
        self,
        train_fraction: float = 0.5,
        rng: random.Random | None = None,
        always_include_job_ids: Iterable[str] = (),
    ) -> tuple["ExecutionLog", "ExecutionLog"]:
        """Random job-level split into (train, test) logs.

        Every job is assigned to the training log with probability
        ``train_fraction`` (the paper: "we iterate through each job, add it
        to the training log with 50% probability, and all remaining jobs are
        added to the test log").  Jobs listed in ``always_include_job_ids``
        (e.g. the pair of interest) are placed in *both* logs so that the
        explanation can be applied to them on either side.
        """
        if not 0.0 < train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        rng = rng if rng is not None else random.Random(0)
        forced = set(always_include_job_ids)
        train = ExecutionLog()
        test = ExecutionLog()
        for job in self.jobs:
            tasks = self.tasks_of_job(job.job_id)
            if job.job_id in forced:
                train.add_job(job, tasks)
                test.add_job(job, tasks)
                continue
            if rng.random() < train_fraction:
                train.add_job(job, tasks)
            else:
                test.add_job(job, tasks)
        return train, test

    def sample_jobs(
        self, fraction: float, rng: random.Random | None = None,
        always_include_job_ids: Iterable[str] = (),
    ) -> "ExecutionLog":
        """A new log with a random subset of jobs (tasks carried over)."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        rng = rng if rng is not None else random.Random(0)
        forced = set(always_include_job_ids)
        subset = ExecutionLog()
        for job in self.jobs:
            if job.job_id in forced or rng.random() < fraction:
                subset.add_job(job, self.tasks_of_job(job.job_id))
        return subset

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #

    def to_json(self) -> str:
        """Serialise the log to a JSON string."""
        payload = {
            "jobs": [record_to_dict(job) for job in self.jobs],
            "tasks": [record_to_dict(task) for task in self.tasks],
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExecutionLog":
        """Parse a log previously produced by :meth:`to_json`."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise LogFormatError(f"invalid execution-log JSON: {exc}") from exc
        log = cls()
        for job_payload in payload.get("jobs", []):
            record = record_from_dict(job_payload)
            if not isinstance(record, JobRecord):
                raise LogFormatError("found a non-job record in the jobs section")
            log.jobs.append(record)
        for task_payload in payload.get("tasks", []):
            record = record_from_dict(task_payload)
            if not isinstance(record, TaskRecord):
                raise LogFormatError("found a non-task record in the tasks section")
            log.tasks.append(record)
        return log

    @staticmethod
    def _is_jsonl(path: Path) -> bool:
        name = path.name.lower()
        return name.endswith(".jsonl") or name.endswith(".jsonl.gz")

    def save(self, path: str | Path) -> None:
        """Write the log to disk; the file suffix selects the format.

        ``.jsonl`` / ``.jsonl.gz`` paths get the streaming one-record-per-
        line format (:func:`repro.logs.writer.write_records_jsonl`); any
        other path gets the pretty-printed JSON document of
        :meth:`to_json`.  Either way a trailing ``.gz`` transparently
        gzip-compresses the output — production logs are large.
        """
        from repro.logs.writer import open_log_text, write_records_jsonl

        target = Path(path)
        if self._is_jsonl(target):
            write_records_jsonl(target, self.jobs, self.tasks)
            return
        with open_log_text(target, "w") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str | Path) -> "ExecutionLog":
        """Read a log from disk; accepts every format :meth:`save` writes."""
        from repro.logs.parser import read_records_jsonl
        from repro.logs.writer import open_log_text

        source = Path(path)
        if cls._is_jsonl(source):
            jobs, tasks = read_records_jsonl(source)
            log = cls()
            try:
                log.extend(jobs=jobs, tasks=tasks)
            except DuplicateRecordError as exc:
                # A duplicate id inside a *file* must name the path too;
                # re-raise the same type so callers keep the stable
                # kind/record_id fields.
                raise DuplicateRecordError(
                    f"invalid execution log {source}: {exc}",
                    kind=exc.kind,
                    record_id=exc.record_id,
                ) from exc
            return log
        try:
            with open_log_text(source, "r") as handle:
                text = handle.read()
        except (OSError, EOFError) as exc:
            if not source.exists():
                raise
            raise LogFormatError(f"cannot read execution log {source}: {exc}") from exc
        return cls.from_json(text)
