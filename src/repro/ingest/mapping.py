"""The declarative field-mapping layer of the ingestion adapters.

An adapter's knowledge of its source format is expressed as data, not
control flow: a table of :class:`FieldMap` entries, each naming a dotted
path into the source event (``"Task Info.Host"``), the canonical feature
it lands in (``"hostname"``) and an optional unit-converting callable
(``millis_to_seconds``).  The adapters walk their tables instead of
hand-writing one extraction per field, so adding a mapped field is a
one-line change and the tables double as documentation of the format
subset each adapter understands.

Counters the tables do *not* map still survive: :func:`canonical_counter_name`
lowercases them into schema-friendly snake_case feature names, so schema
inference picks them up and PXQL can reference them — the paper's point
that PerfXplain needs no feature curation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.logs.records import FeatureValue

#: Milliseconds per second — real Hadoop/Spark logs stamp epoch millis.
_MILLIS = 1000.0


def lookup_path(payload: Mapping[str, Any], dotted: str) -> Any:
    """Resolve a dotted path into nested JSON; ``None`` when any hop is absent.

    A literal key containing dots wins over path traversal: Spark
    configuration dictionaries are flat with dotted key *names*
    (``"spark.executor.instances"``), while event payloads nest
    (``"Task Info.Host"``).
    """
    if isinstance(payload, Mapping) and dotted in payload:
        return payload[dotted]
    value: Any = payload
    for part in dotted.split("."):
        if not isinstance(value, Mapping):
            return None
        value = value.get(part)
        if value is None:
            return None
    return value


def millis_to_seconds(value: Any) -> float | None:
    """Epoch/duration milliseconds as float seconds."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        return None
    return float(value) / _MILLIS


def to_int(value: Any) -> int | None:
    """Coerce to ``int`` (accepting numeric strings); ``None`` on failure."""
    if isinstance(value, bool):
        return None
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        return int(value)
    if isinstance(value, str):
        try:
            return int(value.strip())
        except ValueError:
            return None
    return None


def to_float(value: Any) -> float | None:
    """Coerce to ``float`` (accepting numeric strings); ``None`` on failure."""
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value.strip())
        except ValueError:
            return None
    return None


def to_str(value: Any) -> str | None:
    """Coerce to ``str``; ``None`` for non-scalar values."""
    if value is None or isinstance(value, (dict, list)):
        return None
    return str(value)


@dataclass(frozen=True)
class FieldMap:
    """One source field: where it lives, what it becomes, how it converts.

    :param source: dotted path into the source event JSON.
    :param feature: canonical feature name the value lands in.
    :param convert: optional unit/type conversion; a conversion returning
        ``None`` drops the field (treated as missing, never as zero).
    """

    source: str
    feature: str
    convert: Callable[[Any], FeatureValue] | None = None

    def extract(self, payload: Mapping[str, Any]) -> FeatureValue:
        """The canonical value of this field in one event (or ``None``)."""
        value = lookup_path(payload, self.source)
        if value is None:
            return None
        if self.convert is not None:
            return self.convert(value)
        if isinstance(value, (dict, list)):
            return None
        return value


def apply_field_maps(
    payload: Mapping[str, Any],
    field_maps: tuple[FieldMap, ...],
    into: dict[str, FeatureValue],
) -> None:
    """Walk a mapping table over one event, writing hits into ``into``.

    Missing sources (and conversions that return ``None``) leave the
    target feature untouched, so an earlier event's value is never
    clobbered by a later event that lacks the field.
    """
    for field_map in field_maps:
        value = field_map.extract(payload)
        if value is not None:
            into[field_map.feature] = value


def canonical_counter_name(group: str, name: str) -> str:
    """A schema-friendly feature name for an unmapped counter.

    Hadoop counters arrive as ``GROUP``/``NAME`` pairs in SHOUTING_SNAKE
    (``FileSystemCounter`` / ``FILE_BYTES_READ``); Spark metric keys are
    Capitalised Words (``Memory Bytes Spilled``).  Both collapse to
    lowercase snake_case on the counter name alone — matching the
    simulator's canonical names (``file_bytes_read``) wherever the same
    quantity exists, so real and simulated logs share feature vocabulary.

    >>> canonical_counter_name("FileSystemCounter", "FILE_BYTES_READ")
    'file_bytes_read'
    >>> canonical_counter_name("", "Memory Bytes Spilled")
    'memory_bytes_spilled'
    """
    del group  # groups only disambiguate within Hadoop; names suffice here
    cleaned = name.strip().replace(".", "_").replace("-", "_").replace(" ", "_")
    return cleaned.lower()


def derive_throughput(
    features: Mapping[str, FeatureValue], duration: float
) -> float | None:
    """Per-task input throughput (bytes/second), the derived feature.

    Uses the canonical input-volume feature (``inputsize``, falling back
    to ``hdfs_bytes_read``); ``None`` when neither is present or the task
    was instantaneous.
    """
    if duration <= 0:
        return None
    for name in ("inputsize", "hdfs_bytes_read"):
        volume = features.get(name)
        if isinstance(volume, (int, float)) and not isinstance(volume, bool):
            return float(volume) / duration
    return None
