"""Hadoop JobHistory (.jhist) adapter.

MRv2 job-history files are Avro-JSON: an ``Avro-Json`` banner line, one
Avro schema line, then one JSON event object per line —
``{"type": "JOB_SUBMITTED", "event": {"...jobhistory.JobSubmitted":
{...}}}``.  The adapter streams those lines, folds the per-job and
per-task lifecycle events (submitted → inited → finished) into canonical
feature dictionaries via the mapping tables, translates counter groups
into the simulator's counter vocabulary (``REDUCE_SHUFFLE_BYTES`` →
``shuffle_bytes``; unmapped counters keep their snake_cased names so
schema inference still sees them), and emits one
:class:`~repro.logs.records.JobRecord` per finished job and one
:class:`~repro.logs.records.TaskRecord` per finished task.

Durations follow the history file's own clock: a job runs from
``submitTime`` to ``finishTime``, a task from ``startTime`` to
``finishTime``, both converted from epoch milliseconds to seconds.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Mapping

from repro.exceptions import (
    PARSE_EMPTY_LOG,
    PARSE_MALFORMED_LINE,
    PARSE_MISSING_FIELD,
    PARSE_TRUNCATED_FILE,
    PARSE_UNKNOWN_EVENT,
    ParserError,
)
from repro.ingest.mapping import (
    FieldMap,
    apply_field_maps,
    canonical_counter_name,
    derive_throughput,
    millis_to_seconds,
    to_int,
    to_str,
)
from repro.ingest.result import IngestStats
from repro.logs.records import FeatureValue, JobRecord, TaskRecord

#: Format identifier (sniffed and stamped as ``source_format``).
HADOOP_JHIST = "hadoop-jhist"

#: The banner line MRv2 writes as the first line of every .jhist file.
JHIST_BANNER = "Avro-Json"

#: Counters whose canonical name differs from their snake_cased Hadoop
#: name; everything else goes through :func:`canonical_counter_name`.
_COUNTER_ALIASES = {
    "REDUCE_SHUFFLE_BYTES": "shuffle_bytes",
}

_JOB_SUBMITTED_MAPS = (
    FieldMap("jobName", "pig_script", to_str),
    FieldMap("userName", "user_name", to_str),
    FieldMap("submitTime", "submit_time", millis_to_seconds),
)

_JOB_INITED_MAPS = (
    FieldMap("launchTime", "start_time", millis_to_seconds),
    FieldMap("totalMaps", "num_map_tasks", to_int),
    FieldMap("totalReduces", "num_reduce_tasks", to_int),
)

_TASK_STARTED_MAPS = (
    FieldMap("taskType", "task_type", to_str),
    FieldMap("startTime", "start_time", millis_to_seconds),
)

_TASK_FINISHED_MAPS = (
    FieldMap("taskType", "task_type", to_str),
    FieldMap("finishTime", "taskfinishtime", millis_to_seconds),
)

_ATTEMPT_FINISHED_MAPS = (
    FieldMap("hostname", "hostname", to_str),
    FieldMap("rackname", "rack_name", to_str),
)

#: Event types that are part of the lifecycle but carry nothing we map.
_IGNORED_EVENTS = frozenset(
    {
        "JOB_QUEUE_CHANGED",
        "JOB_INFO_CHANGED",
        "JOB_PRIORITY_CHANGED",
        "JOB_STATUS_CHANGED",
        "TASK_UPDATED",
        "AM_STARTED",
        "NORMALIZED_RESOURCE",
        "MAP_ATTEMPT_STARTED",
        "REDUCE_ATTEMPT_STARTED",
        "SETUP_ATTEMPT_STARTED",
        "SETUP_ATTEMPT_FINISHED",
        "CLEANUP_ATTEMPT_STARTED",
        "CLEANUP_ATTEMPT_FINISHED",
    }
)


def _event_payload(event: Any) -> Mapping[str, Any] | None:
    """Unwrap the Avro union wrapper ``{"...JobSubmitted": {...}}``."""
    if not isinstance(event, Mapping):
        return None
    if len(event) == 1:
        (inner,) = event.values()
        if isinstance(inner, Mapping):
            return inner
    return event


def _counter_features(counters: Any) -> dict[str, int]:
    """Flatten a Hadoop counters block into canonical feature values."""
    features: dict[str, int] = {}
    if not isinstance(counters, Mapping):
        return features
    for group in counters.get("groups", ()):
        if not isinstance(group, Mapping):
            continue
        group_name = str(group.get("name", ""))
        for count in group.get("counts", ()):
            if not isinstance(count, Mapping):
                continue
            name, value = count.get("name"), to_int(count.get("value"))
            if not isinstance(name, str) or value is None:
                continue
            feature = _COUNTER_ALIASES.get(
                name, canonical_counter_name(group_name, name)
            )
            features[feature] = features.get(feature, 0) + value
    return features


def _job_id_of_task(task_id: str) -> str:
    """``task_1387495749539_0001_m_000000`` -> ``job_1387495749539_0001``."""
    parts = task_id.split("_")
    if len(parts) >= 3 and parts[0] == "task":
        return "_".join(["job", parts[1], parts[2]])
    return task_id


class _JobState:
    """Accumulated lifecycle of one job across its events."""

    __slots__ = ("job_id", "features", "submit_time_ms", "finish_time_ms")

    def __init__(self, job_id: str) -> None:
        self.job_id = job_id
        self.features: dict[str, FeatureValue] = {}
        self.submit_time_ms: float | None = None
        self.finish_time_ms: float | None = None


class _TaskState:
    """Accumulated lifecycle of one task across its events."""

    __slots__ = ("task_id", "features", "start_time_ms", "finish_time_ms")

    def __init__(self, task_id: str) -> None:
        self.task_id = task_id
        self.features: dict[str, FeatureValue] = {}
        self.start_time_ms: float | None = None
        self.finish_time_ms: float | None = None


def _require(payload: Mapping[str, Any], field: str, event_type: str) -> Any:
    value = payload.get(field)
    if value is None:
        raise ParserError(
            f"{event_type} event is missing required field {field!r}",
            code=PARSE_MISSING_FIELD,
        )
    return value


def parse_hadoop_jhist(
    lines: Iterable[str],
    strict: bool = False,
    stats: IngestStats | None = None,
) -> tuple[list[JobRecord], list[TaskRecord], IngestStats]:
    """Stream .jhist lines into job and task records.

    :param lines: the file's text lines (headers included).
    :param strict: raise :class:`~repro.exceptions.ParserError` on the
        first malformed line, unknown event type or truncated entity
        instead of skipping it with a counter.
    :param stats: counters to fill (a fresh object by default).
    :raises ParserError: in strict mode on any irregularity; in either
        mode (code ``empty_log``) when no finished job or task survives —
        a silently empty log would hide total parse failure.
    """
    stats = stats if stats is not None else IngestStats()
    jobs: dict[str, _JobState] = {}
    tasks: dict[str, _TaskState] = {}

    for raw_line in lines:
        stats.lines += 1
        line = raw_line.strip()
        if not line or line == JHIST_BANNER:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            if strict:
                raise ParserError(
                    f"line {stats.lines}: not valid JSON: {exc}",
                    code=PARSE_MALFORMED_LINE,
                ) from exc
            stats.skipped_lines += 1
            continue
        if not isinstance(obj, Mapping) or "type" not in obj:
            if strict:
                raise ParserError(
                    f"line {stats.lines}: not a JobHistory event object",
                    code=PARSE_MALFORMED_LINE,
                )
            stats.skipped_lines += 1
            continue
        event_type = obj["type"]
        if event_type == "record":
            # The Avro schema line shares the {"type": ...} shape.
            continue
        payload = _event_payload(obj.get("event"))
        if payload is None:
            if strict:
                raise ParserError(
                    f"line {stats.lines}: event {event_type!r} has no payload",
                    code=PARSE_MALFORMED_LINE,
                )
            stats.skipped_lines += 1
            continue
        try:
            handled = _apply_event(str(event_type), payload, jobs, tasks)
        except ParserError:
            if strict:
                raise
            stats.skipped_lines += 1
            continue
        if handled:
            stats.events += 1
        elif str(event_type) in _IGNORED_EVENTS:
            stats.events += 1
        else:
            if strict:
                raise ParserError(
                    f"line {stats.lines}: unknown event type {event_type!r}",
                    code=PARSE_UNKNOWN_EVENT,
                )
            stats.unknown_events += 1

    return _finalize(jobs, tasks, strict, stats)


def _apply_event(
    event_type: str,
    payload: Mapping[str, Any],
    jobs: dict[str, _JobState],
    tasks: dict[str, _TaskState],
) -> bool:
    """Fold one event into the lifecycle state; False if unhandled."""
    if event_type == "JOB_SUBMITTED":
        job = _job_state(jobs, str(_require(payload, "jobid", event_type)))
        apply_field_maps(payload, _JOB_SUBMITTED_MAPS, job.features)
        submit = payload.get("submitTime")
        if isinstance(submit, (int, float)):
            job.submit_time_ms = float(submit)
        return True
    if event_type == "JOB_INITED":
        job = _job_state(jobs, str(_require(payload, "jobid", event_type)))
        apply_field_maps(payload, _JOB_INITED_MAPS, job.features)
        return True
    if event_type == "JOB_FINISHED":
        job = _job_state(jobs, str(_require(payload, "jobid", event_type)))
        finish = _require(payload, "finishTime", event_type)
        if isinstance(finish, (int, float)):
            job.finish_time_ms = float(finish)
        counters = _counter_features(payload.get("totalCounters"))
        job.features.update(counters)
        if not counters:
            job.features.setdefault("_no_counters", True)
        return True
    if event_type == "TASK_STARTED":
        task = _task_state(tasks, str(_require(payload, "taskid", event_type)))
        apply_field_maps(payload, _TASK_STARTED_MAPS, task.features)
        start = _require(payload, "startTime", event_type)
        if isinstance(start, (int, float)):
            task.start_time_ms = float(start)
        return True
    if event_type == "TASK_FINISHED":
        task = _task_state(tasks, str(_require(payload, "taskid", event_type)))
        apply_field_maps(payload, _TASK_FINISHED_MAPS, task.features)
        finish = _require(payload, "finishTime", event_type)
        if isinstance(finish, (int, float)):
            task.finish_time_ms = float(finish)
        counters = _counter_features(payload.get("counters"))
        task.features.update(counters)
        if not counters:
            task.features.setdefault("_no_counters", True)
        return True
    if event_type in ("MAP_ATTEMPT_FINISHED", "REDUCE_ATTEMPT_FINISHED"):
        task = _task_state(tasks, str(_require(payload, "taskid", event_type)))
        apply_field_maps(payload, _ATTEMPT_FINISHED_MAPS, task.features)
        return True
    return False


def _job_state(jobs: dict[str, _JobState], job_id: str) -> _JobState:
    if job_id not in jobs:
        jobs[job_id] = _JobState(job_id)
    return jobs[job_id]


def _task_state(tasks: dict[str, _TaskState], task_id: str) -> _TaskState:
    if task_id not in tasks:
        tasks[task_id] = _TaskState(task_id)
    return tasks[task_id]


def _finalize(
    jobs: dict[str, _JobState],
    tasks: dict[str, _TaskState],
    strict: bool,
    stats: IngestStats,
) -> tuple[list[JobRecord], list[TaskRecord], IngestStats]:
    """Turn completed lifecycle states into records, dropping truncated ones."""
    finished_jobs: dict[str, JobRecord] = {}
    for job_id, state in jobs.items():
        if state.finish_time_ms is None or state.submit_time_ms is None:
            if strict:
                raise ParserError(
                    f"job {job_id!r} has no JOB_FINISHED event (truncated file?)",
                    code=PARSE_TRUNCATED_FILE,
                )
            stats.truncated_entities += 1
            continue
        features = dict(state.features)
        if features.pop("_no_counters", None):
            stats.missing_counters += 1
        _derive_job_features(features)
        duration = max(0.0, (state.finish_time_ms - state.submit_time_ms) / 1000.0)
        finished_jobs[job_id] = JobRecord(
            job_id=job_id, features=features, duration=duration
        )

    task_records: list[TaskRecord] = []
    for task_id, state in tasks.items():
        job_id = _job_id_of_task(task_id)
        if state.finish_time_ms is None or state.start_time_ms is None:
            if strict:
                raise ParserError(
                    f"task {task_id!r} has no TASK_FINISHED event (truncated file?)",
                    code=PARSE_TRUNCATED_FILE,
                )
            stats.truncated_entities += 1
            continue
        if jobs and job_id not in finished_jobs:
            # Its job was dropped as truncated; orphan tasks go with it.
            stats.truncated_entities += 1
            continue
        features = dict(state.features)
        if features.pop("_no_counters", None):
            stats.missing_counters += 1
        features["job_id"] = job_id
        duration = max(0.0, (state.finish_time_ms - state.start_time_ms) / 1000.0)
        _derive_task_features(features, duration)
        task_records.append(
            TaskRecord(
                task_id=task_id, job_id=job_id, features=features, duration=duration
            )
        )

    job_records = list(finished_jobs.values())
    stats.jobs += len(job_records)
    stats.tasks += len(task_records)
    if not job_records and not task_records:
        raise ParserError(
            "no finished job or task survived parsing (empty or fully "
            "truncated JobHistory file)",
            code=PARSE_EMPTY_LOG,
        )
    return job_records, task_records, stats


def _derive_job_features(features: dict[str, FeatureValue]) -> None:
    """Canonical aliases the simulator's vocabulary expects on jobs."""
    if "inputsize" not in features and "hdfs_bytes_read" in features:
        features["inputsize"] = features["hdfs_bytes_read"]
    if "input_records" not in features and "map_input_records" in features:
        features["input_records"] = features["map_input_records"]


def _derive_task_features(features: dict[str, FeatureValue], duration: float) -> None:
    """Per-task canonical aliases plus the derived throughput feature."""
    task_type = features.get("task_type")
    if task_type == "MAP":
        aliases = (
            ("inputsize", "hdfs_bytes_read"),
            ("input_records", "map_input_records"),
            ("output_bytes", "map_output_bytes"),
            ("output_records", "map_output_records"),
        )
    else:
        aliases = (
            ("inputsize", "shuffle_bytes"),
            ("input_records", "reduce_input_records"),
            ("output_bytes", "hdfs_bytes_written"),
            ("output_records", "reduce_output_records"),
        )
    for target, source in aliases:
        if target not in features and source in features:
            features[target] = features[source]
    throughput = derive_throughput(features, duration)
    if throughput is not None:
        features["throughput"] = throughput
