"""Format sniffing and the universal execution-log opener.

:func:`sniff_format` looks at the head of a file — never more than its
first few lines — and names the format: ``hadoop-jhist``,
``spark-eventlog``, or one of the repository's native formats
(``native-jsonl``, ``native-json``).  :func:`ingest_path` streams a real
log through its adapter into an :class:`~repro.logs.store.ExecutionLog`
(routing every record batch through :meth:`ExecutionLog.extend` and
stamping ``source_format``/``source_path`` provenance), and
:func:`load_execution_log` is what the CLI and the service catalog call:
any supported format in, ``(log, format)`` out.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Iterable

from repro.exceptions import PARSE_UNKNOWN_FORMAT, ParserError
from repro.ingest.hadoop import HADOOP_JHIST, JHIST_BANNER, parse_hadoop_jhist
from repro.ingest.result import IngestResult, IngestStats
from repro.ingest.spark import SPARK_EVENTLOG, parse_spark_eventlog
from repro.logs.records import JobRecord, TaskRecord
from repro.logs.store import ExecutionLog
from repro.logs.writer import open_log_text

#: The repository's own formats (handled by :meth:`ExecutionLog.load`).
NATIVE_JSONL = "native-jsonl"
NATIVE_JSON = "native-json"

#: Every format :func:`load_execution_log` accepts.
KNOWN_FORMATS = (HADOOP_JHIST, SPARK_EVENTLOG, NATIVE_JSONL, NATIVE_JSON)

#: Real-log formats that go through an ingestion adapter.
ADAPTER_FORMATS: dict[str, Callable] = {
    HADOOP_JHIST: parse_hadoop_jhist,
    SPARK_EVENTLOG: parse_spark_eventlog,
}

#: How many head lines sniffing may inspect before giving up.
_SNIFF_LINES = 5


def sniff_format(path: str | Path) -> str:
    """Name a log file's format from its first few lines.

    :raises ParserError: (code ``unknown_format``) when the head matches
        no known format — including unreadable or empty files.
    """
    target = Path(path)
    try:
        with open_log_text(target, "r") as handle:
            head = [line for _, line in zip(range(_SNIFF_LINES), handle)]
    except (OSError, EOFError) as exc:
        raise ParserError(
            f"cannot read {target}: {exc}", code=PARSE_UNKNOWN_FORMAT
        ) from exc
    return _sniff_lines(head, target)


def _sniff_lines(head: list[str], target: Path) -> str:
    stripped = [line.strip() for line in head if line.strip()]
    if not stripped:
        raise ParserError(
            f"{target} is empty; cannot determine its format",
            code=PARSE_UNKNOWN_FORMAT,
        )
    first = stripped[0]
    if first == JHIST_BANNER:
        return HADOOP_JHIST
    try:
        obj = json.loads(first)
    except json.JSONDecodeError:
        obj = None
    if isinstance(obj, dict):
        if "type" in obj and "event" in obj:
            return HADOOP_JHIST
        if obj.get("type") == "record" and "name" in obj:
            return HADOOP_JHIST  # a banner-less .jhist starting at its schema
        if str(obj.get("Event", "")).startswith("SparkListener"):
            return SPARK_EVENTLOG
        if obj.get("kind") == "meta":
            return NATIVE_JSONL
    if first.startswith("{"):
        # A pretty-printed native document opens with a lone brace (or a
        # brace plus the "jobs"/"tasks" keys further down the head).
        return NATIVE_JSON
    raise ParserError(
        f"{target} matches no known log format "
        f"(known: {', '.join(KNOWN_FORMATS)})",
        code=PARSE_UNKNOWN_FORMAT,
    )


def _stamp(
    records: Iterable[JobRecord] | Iterable[TaskRecord],
    source_format: str,
    source_path: str,
) -> None:
    """Write provenance stamps into every record's feature vector."""
    for record in records:
        record.features["source_format"] = source_format
        record.features["source_path"] = source_path


def ingest_path(
    path: str | Path,
    format: str = "auto",
    strict: bool = False,
) -> IngestResult:
    """Ingest a real-world log file through its format adapter.

    The file streams through the adapter line-at-a-time; the resulting
    record batches are stamped with ``source_format``/``source_path``
    provenance and appended through :meth:`ExecutionLog.extend`.

    :param path: the log file (transparently gunzipped for ``.gz`` paths).
    :param format: ``"auto"`` (sniff), ``"hadoop-jhist"`` or
        ``"spark-eventlog"``.
    :param strict: fail on the first irregular line instead of skipping
        it with a counter (see :class:`~repro.ingest.result.IngestStats`).
    :raises ParserError: on an unknown/undetectable format, in strict
        mode on any irregularity, and always when nothing survives.
    """
    target = Path(path)
    resolved = sniff_format(target) if format == "auto" else format
    adapter = ADAPTER_FORMATS.get(resolved)
    if adapter is None:
        known = ", ".join(sorted(ADAPTER_FORMATS))
        raise ParserError(
            f"format {resolved!r} has no ingestion adapter (adapters: {known}; "
            "native formats load via ExecutionLog.load)",
            code=PARSE_UNKNOWN_FORMAT,
        )
    stats = IngestStats()
    with open_log_text(target, "r") as handle:
        jobs, tasks, stats = adapter(handle, strict=strict, stats=stats)
    source_path = str(target)
    _stamp(jobs, resolved, source_path)
    _stamp(tasks, resolved, source_path)
    log = ExecutionLog()
    log.extend(jobs=jobs, tasks=tasks)
    return IngestResult(
        log=log, stats=stats, source_format=resolved, source_path=source_path
    )


def load_execution_log(
    path: str | Path, format: str = "auto", strict: bool = False
) -> tuple[ExecutionLog, str]:
    """Open any supported log file; returns ``(log, source_format)``.

    Native formats load through :meth:`ExecutionLog.load` unchanged (no
    provenance stamps — those logs already carry the simulator's); real
    formats go through :func:`ingest_path`.
    """
    target = Path(path)
    resolved = sniff_format(target) if format == "auto" else format
    if resolved in ADAPTER_FORMATS:
        return ingest_path(target, format=resolved, strict=strict).log, resolved
    if resolved in (NATIVE_JSONL, NATIVE_JSON):
        return ExecutionLog.load(target), resolved
    raise ParserError(
        f"unknown log format {resolved!r} (known: {', '.join(KNOWN_FORMATS)})",
        code=PARSE_UNKNOWN_FORMAT,
    )
