"""Ingestion outcome types shared by the adapters and the loader."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.logs.store import ExecutionLog


@dataclass
class IngestStats:
    """Running counters of one ingestion pass.

    Nothing is dropped silently: every line an adapter skips (malformed
    JSON, unknown event type, truncated entity) lands in one of these
    counters, so callers can distinguish a clean parse from a lossy one
    and the CLI can report exactly what was ignored.
    """

    #: Total source lines read (including headers and blanks).
    lines: int = 0
    #: Event lines understood and applied.
    events: int = 0
    #: Lines skipped because they were not parseable as events.
    skipped_lines: int = 0
    #: Well-formed events of a type the adapter does not handle.
    unknown_events: int = 0
    #: Entities (jobs/tasks) dropped for missing a finish event.
    truncated_entities: int = 0
    #: Finished entities that carried no counters block.
    missing_counters: int = 0
    #: Job records emitted.
    jobs: int = 0
    #: Task records emitted.
    tasks: int = 0

    @property
    def clean(self) -> bool:
        """Whether nothing at all was skipped or dropped."""
        return (
            self.skipped_lines == 0
            and self.unknown_events == 0
            and self.truncated_entities == 0
        )

    def to_dict(self) -> dict[str, int]:
        """A JSON-compatible snapshot of the counters."""
        return {
            "lines": self.lines,
            "events": self.events,
            "skipped_lines": self.skipped_lines,
            "unknown_events": self.unknown_events,
            "truncated_entities": self.truncated_entities,
            "missing_counters": self.missing_counters,
            "jobs": self.jobs,
            "tasks": self.tasks,
        }


@dataclass
class IngestResult:
    """One ingested log plus everything known about how it got there."""

    log: ExecutionLog
    stats: IngestStats = field(default_factory=IngestStats)
    source_format: str = ""
    source_path: str = ""

    def to_dict(self) -> dict[str, Any]:
        """A JSON-compatible summary (without the log's records)."""
        return {
            "source_format": self.source_format,
            "source_path": self.source_path,
            "stats": self.stats.to_dict(),
        }
