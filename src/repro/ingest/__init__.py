"""Real-world log ingestion: Hadoop and Spark logs as execution logs.

Every log this reproduction explained before this package came from its
own simulator.  :mod:`repro.ingest` opens the real-data path the paper is
actually about: format-sniffing adapters parse **Hadoop JobHistory**
(.jhist, Avro-JSON event lines) and **Spark event logs** (one
``SparkListener*`` JSON object per line) into the same
:class:`~repro.logs.store.ExecutionLog` job/task records the simulator
emits, so every downstream layer — PXQL, the explainers, the detectors,
the service — works on production logs unchanged.

The pieces:

* :mod:`repro.ingest.mapping` — the declarative field-mapping layer:
  dotted source paths to canonical feature names, unit conversion,
  derived features, and canonical names for unmapped counters.
* :mod:`repro.ingest.hadoop` / :mod:`repro.ingest.spark` — the two
  streaming adapters (line-at-a-time; raw JSON is never materialised as
  a whole file).
* :mod:`repro.ingest.loader` — format sniffing (:func:`sniff_format`),
  the adapter dispatcher (:func:`ingest_path`) and the universal opener
  (:func:`load_execution_log`) that also accepts the repository's native
  formats, used by the CLI and :class:`~repro.service.LogCatalog`.

Ingested records carry ``source_format``/``source_path`` provenance
stamps; like the simulator's ``scenario`` stamps they are excluded from
schema inference (:data:`~repro.core.features.DEFAULT_EXCLUDED_FEATURES`),
so an explanation can never cite the file a record came from.
"""

from repro.ingest.hadoop import HADOOP_JHIST, parse_hadoop_jhist
from repro.ingest.loader import (
    IngestResult,
    IngestStats,
    ingest_path,
    load_execution_log,
    sniff_format,
)
from repro.ingest.mapping import (
    FieldMap,
    canonical_counter_name,
    lookup_path,
    millis_to_seconds,
)
from repro.ingest.spark import SPARK_EVENTLOG, parse_spark_eventlog

__all__ = [
    "FieldMap",
    "HADOOP_JHIST",
    "IngestResult",
    "IngestStats",
    "SPARK_EVENTLOG",
    "canonical_counter_name",
    "ingest_path",
    "load_execution_log",
    "lookup_path",
    "millis_to_seconds",
    "parse_hadoop_jhist",
    "parse_spark_eventlog",
    "sniff_format",
]
