"""Spark event-log adapter.

Spark writes one ``SparkListener*`` JSON object per line.  The adapter
folds an application's lifecycle into one
:class:`~repro.logs.records.JobRecord` (``SparkListenerApplicationStart``
→ ``SparkListenerApplicationEnd``, configuration from
``SparkListenerEnvironmentUpdate``) and every successful
``SparkListenerTaskEnd`` into a :class:`~repro.logs.records.TaskRecord`,
mapping Spark's metric names onto the simulator's canonical vocabulary
(``Task Info.Host`` → ``hostname``, input metrics → ``inputsize``/
``input_records``, shuffle read → ``shuffle_bytes``) and keeping unmapped
metrics under snake_cased names so schema inference still sees them.

Task types translate structurally: a ``ShuffleMapTask`` plays the map
role, a ``ResultTask`` the reduce role, so task-level PXQL queries (and
the detectors' MAP/REDUCE rules) apply unchanged.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Mapping

from repro.exceptions import (
    PARSE_EMPTY_LOG,
    PARSE_MALFORMED_LINE,
    PARSE_MISSING_FIELD,
    PARSE_TRUNCATED_FILE,
    PARSE_UNKNOWN_EVENT,
    ParserError,
)
from repro.ingest.mapping import (
    FieldMap,
    apply_field_maps,
    canonical_counter_name,
    derive_throughput,
    millis_to_seconds,
    to_int,
    to_str,
)
from repro.ingest.result import IngestStats
from repro.logs.records import FeatureValue, JobRecord, TaskRecord

#: Format identifier (sniffed and stamped as ``source_format``).
SPARK_EVENTLOG = "spark-eventlog"

_APP_START_MAPS = (
    FieldMap("App Name", "pig_script", to_str),
    FieldMap("User", "user_name", to_str),
    FieldMap("Timestamp", "submit_time", millis_to_seconds),
)

#: Spark properties worth surfacing as canonical job features.
_SPARK_PROPERTY_MAPS = (
    FieldMap("spark.executor.instances", "numinstances", to_int),
    FieldMap("spark.executor.cores", "executor_cores", to_int),
    FieldMap("spark.sql.shuffle.partitions", "num_reduce_tasks", to_int),
)

_TASK_INFO_MAPS = (
    FieldMap("Host", "hostname", to_str),
    FieldMap("Launch Time", "start_time", millis_to_seconds),
    FieldMap("Finish Time", "taskfinishtime", millis_to_seconds),
    FieldMap("Attempt", "attempts", to_int),
)

_TASK_METRIC_MAPS = (
    FieldMap("Input Metrics.Bytes Read", "inputsize", to_int),
    FieldMap("Input Metrics.Records Read", "input_records", to_int),
    FieldMap("Output Metrics.Bytes Written", "output_bytes", to_int),
    FieldMap("Output Metrics.Records Written", "output_records", to_int),
    FieldMap(
        "Shuffle Write Metrics.Shuffle Bytes Written", "shuffle_bytes_written", to_int
    ),
    FieldMap(
        "Shuffle Write Metrics.Shuffle Records Written",
        "shuffle_records_written",
        to_int,
    ),
    FieldMap("Executor Run Time", "executor_run_time", millis_to_seconds),
    FieldMap(
        "Executor Deserialize Time", "executor_deserialize_time", millis_to_seconds
    ),
    FieldMap("JVM GC Time", "jvm_gc_time", millis_to_seconds),
)

#: Scalar task metrics not in the table above land under these names.
_EXTRA_TASK_METRICS = ("Memory Bytes Spilled", "Disk Bytes Spilled", "Result Size")

#: Event types that are lifecycle noise for our record model.
_IGNORED_EVENTS = frozenset(
    {
        "SparkListenerLogStart",
        "SparkListenerBlockManagerAdded",
        "SparkListenerBlockManagerRemoved",
        "SparkListenerExecutorAdded",
        "SparkListenerExecutorRemoved",
        "SparkListenerJobStart",
        "SparkListenerJobEnd",
        "SparkListenerStageSubmitted",
        "SparkListenerStageCompleted",
        "SparkListenerTaskStart",
        "SparkListenerTaskGettingResult",
        "SparkListenerUnpersistRDD",
        "SparkListenerResourceProfileAdded",
    }
)

#: Spark task classes mapped onto MapReduce roles.
_TASK_TYPE_ROLES = {"ShuffleMapTask": "MAP", "ResultTask": "REDUCE"}


class _AppState:
    """One Spark application's accumulated lifecycle."""

    __slots__ = ("app_id", "features", "start_ms", "end_ms", "task_count")

    def __init__(self, app_id: str) -> None:
        self.app_id = app_id
        self.features: dict[str, FeatureValue] = {}
        self.start_ms: float | None = None
        self.end_ms: float | None = None
        self.task_count = 0


def parse_spark_eventlog(
    lines: Iterable[str],
    strict: bool = False,
    stats: IngestStats | None = None,
) -> tuple[list[JobRecord], list[TaskRecord], IngestStats]:
    """Stream Spark event-log lines into job and task records.

    :param lines: the file's text lines.
    :param strict: raise :class:`~repro.exceptions.ParserError` on the
        first malformed line or unknown event instead of counting it.
    :param stats: counters to fill (a fresh object by default).
    :raises ParserError: in strict mode on any irregularity; in either
        mode (code ``empty_log``) when nothing survives parsing.
    """
    stats = stats if stats is not None else IngestStats()
    app: _AppState | None = None
    pending_properties: dict[str, FeatureValue] = {}
    task_records: list[TaskRecord] = []
    aggregates: dict[str, float] = {}

    for raw_line in lines:
        stats.lines += 1
        line = raw_line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            if strict:
                raise ParserError(
                    f"line {stats.lines}: not valid JSON: {exc}",
                    code=PARSE_MALFORMED_LINE,
                ) from exc
            stats.skipped_lines += 1
            continue
        if not isinstance(obj, Mapping) or "Event" not in obj:
            if strict:
                raise ParserError(
                    f"line {stats.lines}: not a Spark listener event object",
                    code=PARSE_MALFORMED_LINE,
                )
            stats.skipped_lines += 1
            continue
        event_type = str(obj["Event"])
        try:
            if event_type == "SparkListenerApplicationStart":
                app = _start_app(obj, app, pending_properties)
                stats.events += 1
            elif event_type == "SparkListenerEnvironmentUpdate":
                properties = obj.get("Spark Properties")
                if isinstance(properties, Mapping):
                    target = app.features if app is not None else pending_properties
                    apply_field_maps(properties, _SPARK_PROPERTY_MAPS, target)
                stats.events += 1
            elif event_type == "SparkListenerTaskEnd":
                record = _task_record(obj, app, stats)
                if record is not None:
                    task_records.append(record)
                    _aggregate(aggregates, record)
                stats.events += 1
            elif event_type == "SparkListenerApplicationEnd":
                if app is not None:
                    timestamp = obj.get("Timestamp")
                    if isinstance(timestamp, (int, float)):
                        app.end_ms = float(timestamp)
                stats.events += 1
            elif event_type in _IGNORED_EVENTS:
                stats.events += 1
            else:
                if strict:
                    raise ParserError(
                        f"line {stats.lines}: unknown event type {event_type!r}",
                        code=PARSE_UNKNOWN_EVENT,
                    )
                stats.unknown_events += 1
        except ParserError:
            if strict:
                raise
            stats.skipped_lines += 1

    return _finalize(app, task_records, aggregates, strict, stats)


def _start_app(
    obj: Mapping[str, Any],
    app: _AppState | None,
    pending_properties: dict[str, FeatureValue],
) -> _AppState:
    app_id = obj.get("App ID")
    if not isinstance(app_id, str) or not app_id:
        raise ParserError(
            "SparkListenerApplicationStart event is missing 'App ID'",
            code=PARSE_MISSING_FIELD,
        )
    state = _AppState(app_id)
    state.features.update(pending_properties)
    apply_field_maps(obj, _APP_START_MAPS, state.features)
    timestamp = obj.get("Timestamp")
    if isinstance(timestamp, (int, float)):
        state.start_ms = float(timestamp)
    return state


def _task_record(
    obj: Mapping[str, Any], app: _AppState | None, stats: IngestStats
) -> TaskRecord | None:
    info = obj.get("Task Info")
    if not isinstance(info, Mapping):
        raise ParserError(
            "SparkListenerTaskEnd event is missing 'Task Info'",
            code=PARSE_MISSING_FIELD,
        )
    if info.get("Failed") is True or info.get("Killed") is True:
        return None  # only successful executions belong in the log
    task_number = to_int(info.get("Task ID"))
    launch = info.get("Launch Time")
    finish = info.get("Finish Time")
    if (
        task_number is None
        or not isinstance(launch, (int, float))
        or not isinstance(finish, (int, float))
    ):
        raise ParserError(
            "SparkListenerTaskEnd event is missing task id or timing fields",
            code=PARSE_MISSING_FIELD,
        )
    app_id = app.app_id if app is not None else "application_unknown"
    features: dict[str, FeatureValue] = {"job_id": app_id}
    apply_field_maps(info, _TASK_INFO_MAPS, features)
    role = _TASK_TYPE_ROLES.get(str(obj.get("Task Type", "")))
    features["task_type"] = role if role is not None else "MAP"
    stage = to_int(obj.get("Stage ID"))
    if stage is not None:
        features["wave"] = stage

    metrics = obj.get("Task Metrics")
    if isinstance(metrics, Mapping):
        apply_field_maps(metrics, _TASK_METRIC_MAPS, features)
        read = metrics.get("Shuffle Read Metrics")
        if isinstance(read, Mapping):
            remote = to_int(read.get("Remote Bytes Read")) or 0
            local = to_int(read.get("Local Bytes Read")) or 0
            if remote or local:
                features["shuffle_bytes"] = remote + local
        for key in _EXTRA_TASK_METRICS:
            value = to_int(metrics.get(key))
            if value is not None:
                features[canonical_counter_name("", key)] = value
    else:
        stats.missing_counters += 1

    duration = max(0.0, (float(finish) - float(launch)) / 1000.0)
    if (
        features.get("task_type") == "REDUCE"
        and "inputsize" not in features
        and "shuffle_bytes" in features
    ):
        features["inputsize"] = features["shuffle_bytes"]
    throughput = derive_throughput(features, duration)
    if throughput is not None:
        features["throughput"] = throughput
    if app is not None:
        app.task_count += 1
    return TaskRecord(
        task_id=f"{app_id}_task_{task_number:06d}",
        job_id=app_id,
        features=features,
        duration=duration,
    )


def _aggregate(aggregates: dict[str, float], record: TaskRecord) -> None:
    """Sum per-task volumes into what becomes the job's counters.

    ``inputsize`` on a reduce-role task is the shuffle-read alias, not
    external input, so only map-role tasks contribute to the job's input
    volume.
    """
    pairs = [
        ("shuffle_bytes", "shuffle_bytes"),
        ("output_bytes", "hdfs_bytes_written"),
        ("memory_bytes_spilled", "memory_bytes_spilled"),
    ]
    if record.features.get("task_type") == "MAP":
        pairs.append(("inputsize", "inputsize"))
        pairs.append(("input_records", "input_records"))
    for source, target in pairs:
        value = record.features.get(source)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            aggregates[target] = aggregates.get(target, 0.0) + float(value)


def _finalize(
    app: _AppState | None,
    task_records: list[TaskRecord],
    aggregates: dict[str, float],
    strict: bool,
    stats: IngestStats,
) -> tuple[list[JobRecord], list[TaskRecord], IngestStats]:
    job_records: list[JobRecord] = []
    if app is not None:
        if app.end_ms is None or app.start_ms is None:
            if strict:
                raise ParserError(
                    f"application {app.app_id!r} has no "
                    "SparkListenerApplicationEnd event (truncated file?)",
                    code=PARSE_TRUNCATED_FILE,
                )
            stats.truncated_entities += 1
            # The tasks still describe complete executions; keep them but
            # detach the job record that would misstate its duration.
        else:
            features = dict(app.features)
            for name, value in aggregates.items():
                features.setdefault(name, int(value))
            features.setdefault("num_map_tasks", app.task_count)
            hosts = {
                task.features.get("hostname")
                for task in task_records
                if task.features.get("hostname") is not None
            }
            if hosts:
                features.setdefault("numinstances", len(hosts))
            duration = max(0.0, (app.end_ms - app.start_ms) / 1000.0)
            job_records.append(
                JobRecord(job_id=app.app_id, features=features, duration=duration)
            )

    stats.jobs += len(job_records)
    stats.tasks += len(task_records)
    if not job_records and not task_records:
        raise ParserError(
            "no application or task survived parsing (empty or fully "
            "truncated Spark event log)",
            code=PARSE_EMPTY_LOG,
        )
    return job_records, task_records, stats
