"""Byte and time unit helpers used across the simulator and workloads."""

from __future__ import annotations

KB = 1024
MB = 1024 * KB
GB = 1024 * MB
TB = 1024 * GB

_SIZE_SUFFIXES = {
    "B": 1,
    "KB": KB,
    "MB": MB,
    "GB": GB,
    "TB": TB,
}


def parse_size(text: str | int | float) -> int:
    """Parse a human-readable size such as ``"128 MB"`` or ``"1.3GB"`` to bytes.

    Plain numbers (int, float, or digit strings) are interpreted as bytes.

    >>> parse_size("64 MB")
    67108864
    >>> parse_size(1024)
    1024
    """
    if isinstance(text, (int, float)):
        return int(text)
    raw = text.strip().upper().replace(" ", "")
    for suffix in sorted(_SIZE_SUFFIXES, key=len, reverse=True):
        if raw.endswith(suffix):
            number = raw[: -len(suffix)]
            if number:
                return int(float(number) * _SIZE_SUFFIXES[suffix])
    try:
        return int(float(raw))
    except ValueError as exc:
        raise ValueError(f"cannot parse size: {text!r}") from exc


def format_size(num_bytes: int | float) -> str:
    """Render a byte count with the largest suffix that keeps 3 digits.

    >>> format_size(64 * MB)
    '64.0 MB'
    """
    value = float(num_bytes)
    for suffix in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024 or suffix == "TB":
            return f"{value:.1f} {suffix}"
        value /= 1024
    raise AssertionError("unreachable")


def format_duration(seconds: float) -> str:
    """Render a duration as ``MMmSSs`` or ``H:MM:SS`` for long runs."""
    seconds = float(seconds)
    if seconds < 60:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m{secs:02d}s"
