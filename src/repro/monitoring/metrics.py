"""Catalogue of monitored metrics.

Metric names deliberately match Ganglia's defaults so that features in the
execution log look like the ones the paper reports (``avg_cpu_user``,
``avg_load_five``, ``avg_pkts_in``, ...).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MetricSpec:
    """Description of one monitored metric.

    :param name: Ganglia metric name.
    :param unit: unit string (informational).
    :param description: what the metric measures.
    """

    name: str
    unit: str
    description: str


#: All metrics sampled on every instance.
GANGLIA_METRICS: dict[str, MetricSpec] = {
    spec.name: spec
    for spec in [
        MetricSpec("cpu_user", "%", "CPU time spent in user processes"),
        MetricSpec("cpu_system", "%", "CPU time spent in the kernel"),
        MetricSpec("cpu_idle", "%", "CPU idle time"),
        MetricSpec("cpu_wio", "%", "CPU time waiting for I/O"),
        MetricSpec("load_one", "procs", "1-minute load average"),
        MetricSpec("load_five", "procs", "5-minute load average"),
        MetricSpec("load_fifteen", "procs", "15-minute load average"),
        MetricSpec("proc_total", "procs", "total number of processes"),
        MetricSpec("proc_run", "procs", "number of running processes"),
        MetricSpec("bytes_in", "bytes/s", "network bytes received per second"),
        MetricSpec("bytes_out", "bytes/s", "network bytes sent per second"),
        MetricSpec("pkts_in", "pkts/s", "network packets received per second"),
        MetricSpec("pkts_out", "pkts/s", "network packets sent per second"),
        MetricSpec("disk_read", "bytes/s", "disk bytes read per second"),
        MetricSpec("disk_write", "bytes/s", "disk bytes written per second"),
        MetricSpec("mem_free", "KB", "free memory"),
        MetricSpec("mem_cached", "KB", "page-cache memory"),
        MetricSpec("swap_free", "KB", "free swap"),
        MetricSpec("boottime", "s", "machine boot timestamp"),
    ]
}

#: Metric names in a stable, documented order.
METRIC_NAMES: list[str] = list(GANGLIA_METRICS)

#: Average network packet size used to derive packet counts from byte counts.
AVG_PACKET_BYTES = 1200.0
