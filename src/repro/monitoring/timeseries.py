"""Minimal time-series container used by the monitoring sampler."""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.exceptions import SimulationError


@dataclass
class TimeSeries:
    """A sequence of (timestamp, value) samples in non-decreasing time order."""

    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def append(self, time: float, value: float) -> None:
        """Append a sample; timestamps must not go backwards."""
        if self.times and time < self.times[-1]:
            raise SimulationError(
                f"time series samples must be appended in order "
                f"({time} < {self.times[-1]})"
            )
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self):
        return iter(zip(self.times, self.values))

    def window(self, start: float, end: float) -> list[float]:
        """Values of samples with ``start <= t <= end``."""
        if end < start:
            return []
        lo = bisect.bisect_left(self.times, start)
        hi = bisect.bisect_right(self.times, end)
        return self.values[lo:hi]

    def mean(self, start: float | None = None, end: float | None = None) -> float | None:
        """Mean value over a window (or over everything); None if empty."""
        if start is None and end is None:
            values = self.values
        else:
            values = self.window(
                start if start is not None else float("-inf"),
                end if end is not None else float("inf"),
            )
        if not values:
            return None
        return sum(values) / len(values)

    def latest_at(self, time: float) -> float | None:
        """The most recent sample value at or before ``time``."""
        position = bisect.bisect_right(self.times, time) - 1
        if position < 0:
            return None
        return self.values[position]
