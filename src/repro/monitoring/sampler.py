"""Sampling the utilization trace the way Ganglia samples ``/proc``.

The :class:`GangliaSampler` walks a simulated job's
:class:`~repro.cluster.trace.UtilizationTrace` and emits, every
``period`` seconds (5 s in the paper), one sample per metric per instance.
Load averages are modelled as exponentially-weighted moving averages of the
instantaneous run-queue length with 1, 5 and 15 minute time constants —
the same semantics as the kernel values Ganglia reports.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.cluster.cluster import Cluster
from repro.cluster.instance import Instance
from repro.cluster.trace import UtilizationTrace
from repro.exceptions import ConfigurationError
from repro.monitoring.metrics import AVG_PACKET_BYTES, METRIC_NAMES
from repro.monitoring.timeseries import TimeSeries


@dataclass
class InstanceSamples:
    """All metric time series collected on one instance."""

    instance_index: int
    hostname: str
    series: dict[str, TimeSeries] = field(default_factory=dict)

    def metric(self, name: str) -> TimeSeries:
        """The time series for a metric (empty if never sampled)."""
        return self.series.setdefault(name, TimeSeries())


class GangliaSampler:
    """Produces per-instance metric time series from a utilization trace."""

    def __init__(
        self,
        period: float = 5.0,
        noise: float = 0.02,
        rng: random.Random | None = None,
    ) -> None:
        """
        :param period: sampling period in seconds (Ganglia default of 5 s).
        :param noise: relative Gaussian measurement noise added to samples.
        :param rng: random generator for the measurement noise.
        """
        if period <= 0:
            raise ConfigurationError("sampling period must be positive")
        if noise < 0:
            raise ConfigurationError("noise must be >= 0")
        self._period = period
        self._noise = noise
        self._rng = rng if rng is not None else random.Random(0)

    @property
    def period(self) -> float:
        """Sampling period in seconds."""
        return self._period

    def sample(
        self,
        trace: UtilizationTrace,
        cluster: Cluster,
        start: float = 0.0,
        end: float | None = None,
    ) -> dict[int, InstanceSamples]:
        """Sample every instance of the cluster over ``[start, end]``.

        :returns: mapping from instance index to its collected samples.
        """
        if end is None:
            end = trace.end_time()
        samples: dict[int, InstanceSamples] = {}
        for instance in cluster:
            samples[instance.index] = self._sample_instance(trace, instance, start, end)
        return samples

    def _sample_instance(
        self,
        trace: UtilizationTrace,
        instance: Instance,
        start: float,
        end: float,
    ) -> InstanceSamples:
        result = InstanceSamples(instance_index=instance.index, hostname=instance.hostname)
        # The load averages are exponentially-weighted moving averages of the
        # run-queue length.  The machine existed before the job's first
        # sample, so the EWMA state starts at the pre-job run queue (the
        # background load) rather than at zero — otherwise every job would
        # show an artificial warm-up ramp that swamps real load differences.
        initial_queue = instance.background_at(start)
        load_one = load_five = load_fifteen = initial_queue
        decay_one = math.exp(-self._period / 60.0)
        decay_five = math.exp(-self._period / 300.0)
        decay_fifteen = math.exp(-self._period / 900.0)
        time = start
        # Guarantee at least one sample even for jobs shorter than the period.
        sample_times = []
        while time <= end + 1e-9:
            sample_times.append(time)
            time += self._period
        if len(sample_times) < 2:
            sample_times = [start, max(start + self._period, end)]

        # Sample times and trace rows both walk forward in time, so the
        # interval lookup is a merged cursor walk over the raw columnar rows
        # rather than one bisection per sample, and background load on idle
        # stretches comes from a monotonic episode cursor.
        rows = trace.rows_for(instance.index)
        num_rows = len(rows)
        position = 0
        profile = instance.load_profile
        load_cursor = profile.cursor() if profile is not None else None
        quiet_background = instance.background_procs
        cores = instance.cores
        memory_mb = instance.memory_mb
        base_proc_count = instance.base_proc_count
        mem_cached = instance.memory_mb * 1024.0 * 0.2
        swap_free = 1024.0 * 1024.0
        boottime = instance.boot_time
        noise = self._noise
        gauss = self._rng.gauss
        series = [result.metric(name) for name in METRIC_NAMES]
        appenders = [
            (s.times.append, s.values.append, name != "boottime")
            for s, name in zip(series, METRIC_NAMES)
        ]

        for sample_time in sample_times:
            while position < num_rows and rows[position][1] <= sample_time:
                position += 1
            if position < num_rows and rows[position][0] <= sample_time:
                row = rows[position]
                background = row[11]
                extra_procs = row[12]
                running = row[2] + row[3]
                cpu_util = row[5]
                disk_read = row[6]
                disk_write = row[7]
                net_in = row[8]
                net_out = row[9]
                memory_used = row[10]
                run_queue = row[4]
            else:
                if load_cursor is None:
                    background = quiet_background
                    extra_procs = 0
                else:
                    background, extra_procs = load_cursor.at(sample_time)
                running = 0
                cpu_util = min(1.0, background / cores)
                disk_read = disk_write = 0.0
                net_in = net_out = 0.0
                memory_used = 600.0 + background * 400.0
                run_queue = background
            load_one = load_one * decay_one + run_queue * (1.0 - decay_one)
            load_five = load_five * decay_five + run_queue * (1.0 - decay_five)
            load_fifteen = (
                load_fifteen * decay_fifteen + run_queue * (1.0 - decay_fifteen)
            )

            cpu_user = 100.0 * cpu_util * 0.85
            cpu_system = 100.0 * cpu_util * 0.10
            cpu_wio = 100.0 * cpu_util * 0.05
            cpu_idle = max(0.0, 100.0 - cpu_user - cpu_system - cpu_wio)
            mem_free_kb = max(0.0, (memory_mb - memory_used) * 1024.0)
            bytes_in = net_in * 1024.0 * 1024.0
            bytes_out = net_out * 1024.0 * 1024.0

            values = (
                cpu_user,
                cpu_system,
                cpu_idle,
                cpu_wio,
                load_one,
                load_five,
                load_fifteen,
                base_proc_count + running + extra_procs,
                run_queue,
                bytes_in,
                bytes_out,
                bytes_in / AVG_PACKET_BYTES,
                bytes_out / AVG_PACKET_BYTES,
                disk_read * 1024.0 * 1024.0,
                disk_write * 1024.0 * 1024.0,
                mem_free_kb,
                mem_cached,
                swap_free,
                boottime,
            )
            for value, (append_time, append_value, noisy) in zip(values, appenders):
                if noise and noisy:
                    value *= 1.0 + gauss(0.0, noise)
                append_time(sample_time)
                append_value(value)
        return result
