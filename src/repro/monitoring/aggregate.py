"""Aggregation of monitoring samples to task- and job-level features.

The paper: "For a given task, it identifies the instance that the task was
executed on, and for each metric, it calculates the average value while the
task was executing.  PerfXplain also percolates this monitoring data up to
the jobs: for each job and each metric, it calculates the average value of
the metric across all the tasks belonging to the job."  These helpers do
exactly that; the resulting feature names are prefixed with ``avg_``.
"""

from __future__ import annotations

from repro.cluster.engine import TaskExecution
from repro.monitoring.metrics import METRIC_NAMES
from repro.monitoring.sampler import InstanceSamples

#: The ``avg_``-prefixed feature names, precomputed once in metric order.
AVG_METRIC_NAMES: list[str] = [f"avg_{name}" for name in METRIC_NAMES]


def average_metrics_over_window(
    samples: InstanceSamples, start: float, end: float
) -> dict[str, float]:
    """Average every metric of one instance over a time window.

    If the window is shorter than the sampling period and contains no
    samples, the nearest preceding sample is used so that very short tasks
    still get metric values (Ganglia would report its last known value).
    """
    averages: dict[str, float] = {}
    for name in METRIC_NAMES:
        series = samples.metric(name)
        mean = series.mean(start, end)
        if mean is None:
            latest = series.latest_at(end)
            mean = latest if latest is not None else 0.0
        averages[name] = mean
    return averages


def task_metric_averages(
    task: TaskExecution, samples_by_instance: dict[int, InstanceSamples]
) -> dict[str, float]:
    """Per-task ``avg_*`` features from the samples of the task's instance."""
    samples = samples_by_instance.get(task.instance_index)
    if samples is None:
        return dict.fromkeys(AVG_METRIC_NAMES, 0.0)
    averages = average_metrics_over_window(samples, task.start_time, task.finish_time)
    return dict(zip(AVG_METRIC_NAMES, averages.values()))


def job_averages_from_task_averages(
    task_averages: list[dict[str, float]],
) -> dict[str, float]:
    """Per-job ``avg_*`` features from precomputed per-task averages.

    The workload runner computes each task's averages exactly once and
    feeds them to both the task records and this job-level mean, instead of
    re-averaging every task's sample windows a second time.  Same totals,
    same accumulation order, same result as :func:`job_metric_averages`.
    """
    if not task_averages:
        return dict.fromkeys(AVG_METRIC_NAMES, 0.0)
    totals: dict[str, float] = dict.fromkeys(AVG_METRIC_NAMES, 0.0)
    for averages in task_averages:
        for key, value in averages.items():
            totals[key] += value
    count = len(task_averages)
    return {key: value / count for key, value in totals.items()}


def job_metric_averages(
    tasks: list[TaskExecution], samples_by_instance: dict[int, InstanceSamples]
) -> dict[str, float]:
    """Per-job ``avg_*`` features: the mean of the task-level averages."""
    return job_averages_from_task_averages(
        [task_metric_averages(task, samples_by_instance) for task in tasks]
    )
