"""Ganglia-like monitoring substrate.

The paper records system metrics (CPU, load averages, process counts,
network and memory counters) with Ganglia every five seconds on each EC2
instance, then averages each metric over a task's lifetime and percolates
those averages up to the job level.  This package does the same over the
simulator's utilization trace:

* :mod:`repro.monitoring.metrics` — the metric catalogue (names mirror
  Ganglia's: ``cpu_user``, ``load_one``, ``proc_total``, ``bytes_in``, ...);
* :mod:`repro.monitoring.sampler` — converts a
  :class:`~repro.cluster.trace.UtilizationTrace` into per-instance time
  series sampled on a fixed period;
* :mod:`repro.monitoring.timeseries` — a small time-series container with
  windowed averaging;
* :mod:`repro.monitoring.aggregate` — per-task and per-job metric averages,
  exactly the ``avg_*`` features the paper's explanations mention.
"""

from repro.monitoring.metrics import GANGLIA_METRICS, MetricSpec
from repro.monitoring.timeseries import TimeSeries
from repro.monitoring.sampler import GangliaSampler, InstanceSamples
from repro.monitoring.aggregate import (
    average_metrics_over_window,
    task_metric_averages,
    job_metric_averages,
)

__all__ = [
    "GANGLIA_METRICS",
    "MetricSpec",
    "TimeSeries",
    "GangliaSampler",
    "InstanceSamples",
    "average_metrics_over_window",
    "task_metric_averages",
    "job_metric_averages",
]
