"""The diff engine: explain a performance regression between two runs.

:class:`DiffEngine` is the cross-log generalization of a single PerfXplain
query.  Given a *before* and an *after* :class:`~repro.logs.store.ExecutionLog`
it:

1. merges the logs under namespaced ids (:class:`repro.diff.view.CrossLogView`),
2. auto-generates the job-level PXQL comparison (pinning the workload
   features the two runs actually share),
3. picks the highest-contrast *cross-run* pair of interest with the existing
   sharded pair kernels — deterministic for every worker count,
4. learns an explanation for that pair over the merged log,
5. runs every deterministic detector on each side independently,
6. computes config/metric deltas between the runs, and
7. emits a JSON-round-trippable :class:`~repro.diff.report.DiffReport`.

Every step is a pure function of ``(before, after, config, seed, technique,
width)``: the same inputs produce byte-identical reports whether the engine
is called directly, through :class:`repro.service.PerfXplainService`, over
HTTP, or from the CLI, and for any ``pair_workers`` setting.
"""

from __future__ import annotations

import math
import random
from typing import Iterable, Sequence

from repro.core.api import PerfXplainSession
from repro.core.examples import (
    Label,
    pair_kernel_for,
    related_index_batches,
    validate_query_features,
)
from repro.core.explainer import PerfXplainConfig
from repro.core.features import FeatureSchema, infer_schema
from repro.core.pxql.ast import Comparison, Operator, Predicate
from repro.core.pxql.query import EntityKind, PXQLQuery
from repro.core.registry import create_explainer
from repro.detectors import DETECTOR_TECHNIQUES
from repro.diff.report import (
    IMPROVEMENT,
    REGRESSION,
    SIMILAR,
    DetectorOutcome,
    DiffReport,
    FeatureDelta,
    RunSummary,
)
from repro.diff.view import AFTER_RUN, BEFORE_RUN, CrossLogView
from repro.exceptions import DiffError, ReproError
from repro.logs.records import ExecutionRecord
from repro.logs.store import ExecutionLog

#: Median job-duration ratio beyond which the runs count as different.
DIRECTION_THRESHOLD = 1.1

#: Most-recognisable workload identities, pinned first in the auto-generated
#: despite clause when constant across both runs.
_PREFERRED_PINNED = ("pig_script", "app_name")

#: At most this many ``_isSame = T`` atoms are pinned.
_MAX_PINNED = 3

#: Numeric deltas below this signed relative change are noise, not evidence.
MIN_RELATIVE_DELTA = 0.05

#: The report keeps at most this many deltas, largest relative change first.
MAX_DELTAS = 10

_EPSILON = 1e-9


def _median(values: Sequence[float]) -> float:
    """Median of a non-empty sequence (mean of middles for even counts)."""
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[middle])
    return (ordered[middle - 1] + ordered[middle]) / 2.0


def _pinned_features(
    jobs: Sequence[ExecutionRecord], schema: FeatureSchema
) -> list[str]:
    """Nominal raw features constant and non-missing across ALL merged jobs.

    Pinning only constants means the despite clause documents what the runs
    share without filtering out a single cross-run candidate pair.
    """
    constant = []
    for name in schema.nominal_features():
        values = {job.features.get(name) for job in jobs}
        if len(values) == 1 and None not in values:
            constant.append(name)
    preferred = [name for name in _PREFERRED_PINNED if name in constant]
    rest = sorted(name for name in constant if name not in _PREFERRED_PINNED)
    return (preferred + rest)[:_MAX_PINNED]


class DiffEngine:
    """Compare two execution logs and explain the difference.

    :param before: the baseline run.
    :param after: the run under suspicion.
    :param config: explanation configuration; ``pair_workers`` controls how
        many processes the cross-run candidate filtering shards across
        (bit-identical output for every setting).
    :param seed: seed for sampling inside the learned explainer.
    :param technique: registered learned technique for step 4.
    :param width: explanation width (defaults to the configured width).
    :param detectors: deterministic detector techniques run on each side.
    :param max_candidate_pairs: safety valve for the cross-run pair scan.
    """

    def __init__(
        self,
        before: ExecutionLog,
        after: ExecutionLog,
        config: PerfXplainConfig | None = None,
        seed: int = 0,
        technique: str = "perfxplain",
        width: int | None = None,
        detectors: Iterable[str] = DETECTOR_TECHNIQUES,
        max_candidate_pairs: int | None = 500_000,
        direction_threshold: float = DIRECTION_THRESHOLD,
    ) -> None:
        self.before = before
        self.after = after
        self.config = config if config is not None else PerfXplainConfig()
        self.seed = seed
        self.technique = technique
        self.width = width
        self.detectors = tuple(detectors)
        self.max_candidate_pairs = max_candidate_pairs
        self.direction_threshold = direction_threshold
        self._view: CrossLogView | None = None

    @property
    def view(self) -> CrossLogView:
        """The merged cross-log view (built on first use)."""
        if self._view is None:
            self._view = CrossLogView(self.before, self.after)
        return self._view

    # ------------------------------------------------------------------ #
    # the auto-generated comparison
    # ------------------------------------------------------------------ #

    def comparison_query(self) -> PXQLQuery:
        """The job-level cross-run PXQL comparison this diff answers.

        DESPITE pins the nominal workload features both runs share (so the
        question reads "same script, same setup — why slower?"), OBSERVED is
        ``duration_compare = GT`` and EXPECTED is ``SIM`` — the paper's
        canonical why-slower shape, ranging over the merged log.
        """
        merged = self.view.merged
        schema = infer_schema(merged.jobs)
        pinned = _pinned_features(merged.jobs, schema)
        despite = Predicate.conjunction(
            [Comparison(f"{name}_isSame", Operator.EQ, "T") for name in pinned]
        )
        return PXQLQuery(
            entity=EntityKind.JOB,
            despite=despite,
            observed=Predicate.of(Comparison("duration_compare", Operator.EQ, "GT")),
            expected=Predicate.of(Comparison("duration_compare", Operator.EQ, "SIM")),
            name="CrossLogDiff",
        )

    # ------------------------------------------------------------------ #
    # cross-run pair of interest
    # ------------------------------------------------------------------ #

    def find_cross_pair(
        self, query: PXQLQuery, regressed_run: str
    ) -> tuple[str, str] | None:
        """The highest-contrast OBSERVED pair that straddles the run boundary.

        The same contrast rule as
        :func:`repro.core.queries.find_pair_of_interest` (max
        ``|log(d1/d2)|``, strict improvement, first wins), restricted to
        pairs whose members come from different runs with the *first* (the
        slower, by OBSERVED = GT) in ``regressed_run``.  Returns namespaced
        ids, or ``None`` when no cross-run pair satisfies the query.

        Sharded via ``config.pair_workers``; the candidate stream is
        byte-identical for every worker count, so the selected pair is too.
        """
        merged = self.view.merged
        schema = infer_schema(merged.jobs)
        validate_query_features(query, schema)
        kernel = pair_kernel_for(merged, query, schema, self.config.pair_config)
        records = kernel.block.records
        boundary = self.view.job_boundary
        regressed_is_after = regressed_run == AFTER_RUN

        best: tuple[str, str] | None = None
        best_contrast = -1.0
        for firsts, seconds, labels in related_index_batches(
            kernel,
            query,
            self.max_candidate_pairs,
            random.Random(self.seed),
            workers=self.config.pair_workers,
        ):
            for first, second, label in zip(firsts, seconds, labels):
                if label is not Label.OBSERVED:
                    continue
                first_is_after = first >= boundary
                if first_is_after == (second >= boundary):
                    continue  # same-run pair: not a cross-run comparison
                if first_is_after != regressed_is_after:
                    continue  # slower member must come from the regressed run
                d1 = max(records[first].duration, _EPSILON)
                d2 = max(records[second].duration, _EPSILON)
                contrast = abs(math.log(d1 / d2))
                if contrast > best_contrast:
                    best_contrast = contrast
                    best = (records[first].entity_id, records[second].entity_id)
        return best

    # ------------------------------------------------------------------ #
    # detectors and deltas
    # ------------------------------------------------------------------ #

    def _detector_outcomes(self) -> tuple[DetectorOutcome, ...]:
        """Every detector's verdict on each side, in a fixed order."""
        # Imported here, not at module level: the wire protocol imports the
        # report types, so a top-level service import would be circular.
        from repro.service.protocol import error_code_for

        outcomes = []
        for run, log in ((BEFORE_RUN, self.before), (AFTER_RUN, self.after)):
            facade = PerfXplainSession(log, config=self.config, seed=self.seed)
            for name in self.detectors:
                query_text = create_explainer(name).default_query
                try:
                    explanation = facade.explain(query_text, technique=name)
                except ReproError as error:
                    outcomes.append(
                        DetectorOutcome(
                            technique=name,
                            run=run,
                            fired=False,
                            reason=str(error),
                            code=error_code_for(error),
                        )
                    )
                else:
                    outcomes.append(
                        DetectorOutcome(
                            technique=name,
                            run=run,
                            fired=True,
                            explanation=explanation,
                        )
                    )
        return tuple(outcomes)

    def _feature_deltas(self) -> tuple[FeatureDelta, ...]:
        """Config/metric features whose distributions moved between runs."""
        schema = infer_schema(
            list(self.before.jobs) + list(self.after.jobs), include_duration=False
        )
        deltas = []
        for name in schema.names():
            before_values = [
                job.features.get(name)
                for job in self.before.jobs
                if job.features.get(name) is not None
            ]
            after_values = [
                job.features.get(name)
                for job in self.after.jobs
                if job.features.get(name) is not None
            ]
            if schema.is_numeric(name):
                before_median = _median(before_values) if before_values else None
                after_median = _median(after_values) if after_values else None
                if before_median is None and after_median is None:
                    continue
                if before_median is None or after_median is None:
                    change = 1.0  # the feature appeared or disappeared
                else:
                    scale = max(abs(before_median), abs(after_median), _EPSILON)
                    change = (after_median - before_median) / scale
                if abs(change) < MIN_RELATIVE_DELTA:
                    continue
                deltas.append(
                    FeatureDelta(
                        feature=name,
                        kind="numeric",
                        before=before_median,
                        after=after_median,
                        relative_change=change,
                    )
                )
            else:
                before_set = sorted({str(value) for value in before_values})
                after_set = sorted({str(value) for value in after_values})
                if before_set == after_set:
                    continue
                deltas.append(
                    FeatureDelta(
                        feature=name,
                        kind="nominal",
                        before=before_set,
                        after=after_set,
                        relative_change=1.0,
                    )
                )
        deltas.sort(key=lambda delta: (-abs(delta.relative_change), delta.feature))
        return tuple(deltas[:MAX_DELTAS])

    # ------------------------------------------------------------------ #
    # the report
    # ------------------------------------------------------------------ #

    def report(self) -> DiffReport:
        """Run the full diff and emit the structured report.

        :raises DiffError: when either side has no job records — there is
            no job-level distribution to compare.
        """
        for run, log in ((BEFORE_RUN, self.before), (AFTER_RUN, self.after)):
            if log.num_jobs == 0:
                raise DiffError(
                    f"diff requires job records on both sides; "
                    f"the {run} log has none"
                )

        before_median = _median([job.duration for job in self.before.jobs])
        after_median = _median([job.duration for job in self.after.jobs])
        ratio = after_median / max(before_median, _EPSILON)
        if ratio > self.direction_threshold:
            direction = REGRESSION
        elif ratio < 1.0 / self.direction_threshold:
            direction = IMPROVEMENT
        else:
            direction = SIMILAR
        regressed_run = AFTER_RUN if ratio >= 1.0 else BEFORE_RUN

        query = self.comparison_query()
        pair = self.find_cross_pair(query, regressed_run)

        explanation = None
        explanation_error = None
        first_id = second_id = None
        if pair is None:
            explanation_error = (
                "no cross-run pair satisfies the despite and observed "
                "clauses of the generated comparison"
            )
        else:
            first_id, second_id = pair
            session = PerfXplainSession(
                self.view.merged, config=self.config, seed=self.seed
            )
            try:
                explanation = session.explain(
                    query.with_pair(first_id, second_id),
                    width=self.width,
                    technique=self.technique,
                )
            except ReproError as error:
                explanation_error = str(error)

        return DiffReport(
            before=RunSummary(
                run=BEFORE_RUN,
                num_jobs=self.before.num_jobs,
                num_tasks=self.before.num_tasks,
                median_job_duration=before_median,
            ),
            after=RunSummary(
                run=AFTER_RUN,
                num_jobs=self.after.num_jobs,
                num_tasks=self.after.num_tasks,
                median_job_duration=after_median,
            ),
            direction=direction,
            duration_ratio=ratio,
            query=str(query),
            first_id=first_id,
            second_id=second_id,
            explanation=explanation,
            explanation_error=explanation_error,
            detectors=self._detector_outcomes(),
            deltas=self._feature_deltas(),
        )
