"""Cross-log view: two execution logs merged under namespaced record ids.

PerfXplain's pair queries range over one :class:`~repro.logs.store.ExecutionLog`.
A regression investigation has *two* — a before run and an after run — and the
interesting pairs straddle the boundary.  :class:`CrossLogView` builds the
bridge: it re-keys every record of both logs under a run-prefixed id
(``before::job_3`` / ``after::job_3``), stamps each record with a ``run``
provenance feature, and merges them into a single log that the existing
columnar pair kernels consume unchanged.

Three properties make the view safe and deterministic:

* **No mispairing.**  Two runs of the same workload routinely reuse job and
  task ids.  `ExecutionLog.merge` silently drops the second log's records on
  an id collision — exactly the records a diff needs.  The view instead
  namespaces every id with its run label *before* merging, so identical id
  sets on both sides can neither collide (no spurious
  :class:`~repro.exceptions.DuplicateRecordError`) nor alias each other
  (no silent mispair).  Task → job edges are rewritten consistently, so
  ``tasks_of_job`` still resolves within a run.
* **Provenance is visible but never learnable.**  The ``run`` feature is in
  :data:`~repro.core.features.DEFAULT_EXCLUDED_FEATURES`: schema inference
  drops it, so explanations can never cite "it was slow because it was the
  after run" — the same rule that hides ``scenario`` ground-truth stamps.
  Run membership is instead recovered positionally: the merged log lists all
  before-records first, so an index below :attr:`job_boundary` (or
  :attr:`task_boundary`) belongs to the before run.
* **Determinism.**  The merged record order is a pure function of the two
  input logs (before's records in order, then after's), and run labels are
  the fixed literals ``"before"``/``"after"`` — never user-supplied names —
  so every downstream artifact (namespaced ids, candidate-pair order, the
  bound query text, the report JSON) is byte-identical no matter how the
  logs were addressed (paths, catalog names, HTTP).
"""

from __future__ import annotations

from repro.logs.records import ExecutionRecord, JobRecord, TaskRecord
from repro.logs.store import ExecutionLog

#: Fixed run labels.  These are deliberately NOT the catalog names or file
#: paths of the inputs: a diff of logs ``prod-monday`` vs ``prod-tuesday``
#: and the same pair addressed by path must produce identical reports.
BEFORE_RUN = "before"
AFTER_RUN = "after"

#: The provenance feature stamped onto every merged record.  Listed in
#: :data:`repro.core.features.DEFAULT_EXCLUDED_FEATURES` so schema
#: inference never offers it to the explainer.
RUN_FEATURE = "run"

#: Separator between the run label and the original record id.  ``::`` is
#: safe because run labels never contain it, so the split below is
#: unambiguous even if the original id itself contains ``::``.
RUN_SEPARATOR = "::"


def namespace_id(run: str, record_id: str) -> str:
    """The merged-log id of ``record_id`` from run ``run``."""
    return f"{run}{RUN_SEPARATOR}{record_id}"


def split_id(namespaced_id: str) -> tuple[str, str]:
    """Invert :func:`namespace_id`: ``(run, original_id)``.

    Splits on the *first* separator only, so original ids containing
    ``::`` round-trip unchanged.
    """
    run, separator, original = namespaced_id.partition(RUN_SEPARATOR)
    if not separator or run not in (BEFORE_RUN, AFTER_RUN):
        raise ValueError(f"{namespaced_id!r} is not a namespaced cross-log id")
    return run, original


def _namespace_job(run: str, job: JobRecord) -> JobRecord:
    return JobRecord(
        job_id=namespace_id(run, job.job_id),
        features={**job.features, RUN_FEATURE: run},
        duration=job.duration,
    )


def _namespace_task(run: str, task: TaskRecord) -> TaskRecord:
    return TaskRecord(
        task_id=namespace_id(run, task.task_id),
        job_id=namespace_id(run, task.job_id),
        features={**task.features, RUN_FEATURE: run},
        duration=task.duration,
    )


class CrossLogView:
    """Two execution logs merged for cross-run pair queries.

    :param before: the baseline run.
    :param after: the run under suspicion.

    The inputs are never mutated; the merged log holds namespaced copies.
    """

    __slots__ = ("before", "after", "merged", "job_boundary", "task_boundary")

    def __init__(self, before: ExecutionLog, after: ExecutionLog) -> None:
        self.before = before
        self.after = after
        jobs: list[JobRecord] = []
        tasks: list[TaskRecord] = []
        for run, log in ((BEFORE_RUN, before), (AFTER_RUN, after)):
            jobs.extend(_namespace_job(run, job) for job in log.jobs)
            tasks.extend(_namespace_task(run, task) for task in log.tasks)
        #: Merged-log indices below these belong to the before run.  Needed
        #: because ``run`` is schema-excluded: a record block has no ``run``
        #: column to read membership from.
        self.job_boundary = before.num_jobs
        self.task_boundary = before.num_tasks
        merged = ExecutionLog()
        # One atomic extend: its duplicate-id pre-validation is a free
        # invariant check (run prefixes make collisions impossible unless a
        # single input log was itself invalid).
        merged.extend(jobs=jobs, tasks=tasks)
        self.merged = merged

    def boundary(self, kind: str) -> int:
        """The first after-run index in the merged ``kind`` record list."""
        if kind == "job":
            return self.job_boundary
        if kind == "task":
            return self.task_boundary
        raise ValueError(f"unknown record kind {kind!r}")

    def run_of_index(self, kind: str, index: int) -> str:
        """Which run the merged record at ``index`` came from."""
        return BEFORE_RUN if index < self.boundary(kind) else AFTER_RUN

    def original_record(self, namespaced_id: str) -> ExecutionRecord:
        """The un-namespaced source record behind a merged-log id."""
        run, original = split_id(namespaced_id)
        source = self.before if run == BEFORE_RUN else self.after
        record = source.find_job(original)
        if record is None:
            record = source.find_task(original)
        if record is None:
            raise KeyError(f"{namespaced_id!r} has no source record")
        return record
