"""The structured result of a cross-log diff: what changed, and why.

A :class:`DiffReport` is the wire- and CLI-facing artifact of
:class:`repro.diff.engine.DiffEngine`.  It is a plain frozen dataclass tree
with exact ``to_dict``/``from_dict``/``to_json``/``from_json`` round-trips
(the same discipline as :class:`repro.core.explanation.Explanation`), so a
report produced by a direct engine call, the service executor, the HTTP
endpoint and the CLI serializes to byte-identical JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.explanation import Explanation
from repro.core.pairs import raw_feature_of
from repro.exceptions import ProtocolError

#: Report directions (by the ratio of median job durations, after/before).
REGRESSION = "regression"
IMPROVEMENT = "improvement"
SIMILAR = "similar"

_DIRECTIONS = (REGRESSION, IMPROVEMENT, SIMILAR)


def _require_mapping(data: Any, what: str) -> Mapping[str, Any]:
    if not isinstance(data, Mapping):
        raise ProtocolError(f"{what} must be a JSON object, got {type(data).__name__}")
    return data


@dataclass(frozen=True)
class RunSummary:
    """Size and central tendency of one side of the diff."""

    run: str
    num_jobs: int
    num_tasks: int
    median_job_duration: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "run": self.run,
            "num_jobs": self.num_jobs,
            "num_tasks": self.num_tasks,
            "median_job_duration": self.median_job_duration,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunSummary":
        data = _require_mapping(data, "run summary")
        return cls(
            run=str(data["run"]),
            num_jobs=int(data["num_jobs"]),
            num_tasks=int(data["num_tasks"]),
            median_job_duration=float(data["median_job_duration"]),
        )


@dataclass(frozen=True)
class FeatureDelta:
    """One feature whose distribution moved between the runs.

    For numeric features ``before``/``after`` are per-run medians over
    non-missing values (``None`` when the feature is absent on that side)
    and ``relative_change`` is the signed relative move.  For nominal
    features they are the sorted per-run value sets and
    ``relative_change`` is ``1.0`` (changed) by construction.
    """

    feature: str
    kind: str  # "numeric" | "nominal"
    before: Any
    after: Any
    relative_change: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "feature": self.feature,
            "kind": self.kind,
            "before": self.before,
            "after": self.after,
            "relative_change": self.relative_change,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FeatureDelta":
        data = _require_mapping(data, "feature delta")
        return cls(
            feature=str(data["feature"]),
            kind=str(data["kind"]),
            before=data["before"],
            after=data["after"],
            relative_change=float(data["relative_change"]),
        )

    def format(self) -> str:
        """One human-readable line."""
        if self.kind == "numeric":
            before = "absent" if self.before is None else f"{self.before:g}"
            after = "absent" if self.after is None else f"{self.after:g}"
            return (
                f"{self.feature}: {before} -> {after} "
                f"({self.relative_change:+.1%})"
            )
        return f"{self.feature}: {self.before!r} -> {self.after!r}"


@dataclass(frozen=True)
class DetectorOutcome:
    """One deterministic detector's verdict on one side of the diff."""

    technique: str
    run: str
    fired: bool
    explanation: Explanation | None = None
    reason: str | None = None
    code: str | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "technique": self.technique,
            "run": self.run,
            "fired": self.fired,
            "explanation": (
                None if self.explanation is None else self.explanation.to_dict()
            ),
            "reason": self.reason,
            "code": self.code,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DetectorOutcome":
        data = _require_mapping(data, "detector outcome")
        explanation = data.get("explanation")
        return cls(
            technique=str(data["technique"]),
            run=str(data["run"]),
            fired=bool(data["fired"]),
            explanation=(
                None if explanation is None else Explanation.from_dict(explanation)
            ),
            reason=None if data.get("reason") is None else str(data["reason"]),
            code=None if data.get("code") is None else str(data["code"]),
        )


@dataclass(frozen=True)
class DiffReport:
    """What changed between two runs, and why.

    :param before: summary of the baseline run.
    :param after: summary of the run under suspicion.
    :param direction: ``"regression"``, ``"improvement"`` or ``"similar"``.
    :param duration_ratio: median job duration, after over before.
    :param query: the auto-generated cross-run PXQL comparison (text).
    :param first_id: namespaced id of the slower half of the pair of
        interest (``None`` when no cross-run pair satisfied the query).
    :param second_id: namespaced id of the faster half.
    :param explanation: the learned explanation for the pair of interest.
    :param explanation_error: why no learned explanation exists, when so.
    :param detectors: every deterministic detector's verdict on each run.
    :param deltas: config/metric features whose distributions moved.
    """

    before: RunSummary
    after: RunSummary
    direction: str
    duration_ratio: float
    query: str
    first_id: str | None = None
    second_id: str | None = None
    explanation: Explanation | None = None
    explanation_error: str | None = None
    detectors: tuple[DetectorOutcome, ...] = ()
    deltas: tuple[FeatureDelta, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.direction not in _DIRECTIONS:
            raise ValueError(f"unknown diff direction {self.direction!r}")

    def cited_features(self) -> frozenset[str]:
        """Raw features the report blames, across all evidence kinds.

        The union of the learned explanation's because-atoms, every fired
        detector's because-atoms, and the delta table — the surface the
        scenario-catalog tests check ground-truth features against.
        """
        cited: set[str] = set()
        if self.explanation is not None:
            cited.update(
                raw_feature_of(atom.feature) for atom in self.explanation.because.atoms
            )
        for outcome in self.detectors:
            if outcome.fired and outcome.explanation is not None:
                cited.update(
                    raw_feature_of(atom.feature)
                    for atom in outcome.explanation.because.atoms
                )
        cited.update(delta.feature for delta in self.deltas)
        return frozenset(cited)

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "diff_report",
            "before": self.before.to_dict(),
            "after": self.after.to_dict(),
            "direction": self.direction,
            "duration_ratio": self.duration_ratio,
            "query": self.query,
            "first_id": self.first_id,
            "second_id": self.second_id,
            "explanation": (
                None if self.explanation is None else self.explanation.to_dict()
            ),
            "explanation_error": self.explanation_error,
            "detectors": [outcome.to_dict() for outcome in self.detectors],
            "deltas": [delta.to_dict() for delta in self.deltas],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DiffReport":
        data = _require_mapping(data, "diff report")
        tag = data.get("type", "diff_report")
        if tag != "diff_report":
            raise ProtocolError(f"expected a diff_report payload, got {tag!r}")
        explanation = data.get("explanation")
        return cls(
            before=RunSummary.from_dict(data["before"]),
            after=RunSummary.from_dict(data["after"]),
            direction=str(data["direction"]),
            duration_ratio=float(data["duration_ratio"]),
            query=str(data["query"]),
            first_id=None if data.get("first_id") is None else str(data["first_id"]),
            second_id=None if data.get("second_id") is None else str(data["second_id"]),
            explanation=(
                None if explanation is None else Explanation.from_dict(explanation)
            ),
            explanation_error=(
                None
                if data.get("explanation_error") is None
                else str(data["explanation_error"])
            ),
            detectors=tuple(
                DetectorOutcome.from_dict(entry) for entry in data.get("detectors", [])
            ),
            deltas=tuple(
                FeatureDelta.from_dict(entry) for entry in data.get("deltas", [])
            ),
        )

    def to_json(self, **kwargs: Any) -> str:
        kwargs.setdefault("sort_keys", True)
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_json(cls, text: str) -> "DiffReport":
        return cls.from_dict(json.loads(text))

    def format(self) -> str:
        """Human-readable multi-line rendering (the CLI's text format)."""
        lines = [
            f"cross-log diff: {self.direction.upper()} — median job duration "
            f"{self.before.median_job_duration:g} s -> "
            f"{self.after.median_job_duration:g} s "
            f"({self.duration_ratio:.2f}x; {self.before.num_jobs} vs "
            f"{self.after.num_jobs} jobs)",
            f"query: {self.query}",
        ]
        if self.first_id is not None and self.second_id is not None:
            lines.append(f"pair of interest: {self.first_id} vs {self.second_id}")
        if self.explanation is not None:
            lines.append("learned explanation:")
            lines.extend(f"  {line}" for line in self.explanation.format().splitlines())
        elif self.explanation_error is not None:
            lines.append(f"learned explanation: none ({self.explanation_error})")
        if self.deltas:
            lines.append("what changed:")
            lines.extend(f"  {delta.format()}" for delta in self.deltas)
        fired = [outcome for outcome in self.detectors if outcome.fired]
        if fired:
            lines.append("detectors fired:")
            for outcome in fired:
                because = (
                    f" — BECAUSE {outcome.explanation.because}"
                    if outcome.explanation is not None
                    else ""
                )
                lines.append(f"  {outcome.technique} on {outcome.run}{because}")
        else:
            lines.append("detectors fired: none")
        return "\n".join(lines)
