"""Cross-log diff: explain a performance regression between two runs.

The first subsystem where two execution logs flow through one query:

* :class:`~repro.diff.view.CrossLogView` — two logs merged under namespaced
  ids with a schema-excluded ``run`` provenance feature, ready for the
  columnar pair kernels.
* :class:`~repro.diff.engine.DiffEngine` — auto-generates the job-level
  cross-run comparison, learns an explanation for the highest-contrast
  cross-run pair, runs the deterministic detectors on both sides, and
  computes config/metric deltas.
* :class:`~repro.diff.report.DiffReport` — the structured, JSON-
  round-trippable "what changed and why" result.

Served as protocol v3 ``POST /v1/diff`` and the CLI ``diff`` subcommand.
"""

from repro.diff.engine import DiffEngine
from repro.diff.report import (
    DetectorOutcome,
    DiffReport,
    FeatureDelta,
    RunSummary,
)
from repro.diff.view import (
    AFTER_RUN,
    BEFORE_RUN,
    RUN_FEATURE,
    CrossLogView,
    namespace_id,
    split_id,
)

__all__ = [
    "AFTER_RUN",
    "BEFORE_RUN",
    "RUN_FEATURE",
    "CrossLogView",
    "DetectorOutcome",
    "DiffEngine",
    "DiffReport",
    "FeatureDelta",
    "RunSummary",
    "namespace_id",
    "split_id",
]
