"""Command-line interface for the PerfXplain reproduction.

Three subcommands cover the typical workflow:

``repro-perfxplain generate-log --grid small --output log.json``
    Simulate a workload grid and save the execution log as JSON.

``repro-perfxplain explain --log log.json --query query.pxql``
    Parse a PXQL query (from a file or stdin) and print the explanation.

``repro-perfxplain evaluate --log log.json --query-name WhySlowerDespiteSameNumInstances``
    Run the cross-validated precision-vs-width comparison of the three
    techniques for one of the paper's queries.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.api import PerfXplain
from repro.core.baselines import RuleOfThumbExplainer, SimButDiffExplainer
from repro.core.evaluation import evaluate_precision_vs_width
from repro.core.explainer import PerfXplainExplainer
from repro.core.pxql.parser import parse_query
from repro.core.queries import PAPER_QUERIES, find_pair_of_interest
from repro.exceptions import ReproError
from repro.logs.store import ExecutionLog
from repro.workloads.grid import build_experiment_log, paper_grid, small_grid, tiny_grid

_GRIDS = {"tiny": tiny_grid, "small": small_grid, "paper": paper_grid}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-perfxplain",
        description="PerfXplain reproduction: explain MapReduce performance differences.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate-log", help="simulate a workload grid")
    generate.add_argument("--grid", choices=sorted(_GRIDS), default="small",
                          help="which parameter grid to run (default: small)")
    generate.add_argument("--seed", type=int, default=7, help="base random seed")
    generate.add_argument("--repetitions", type=int, default=1,
                          help="how many times to run each grid point")
    generate.add_argument("--no-tasks", action="store_true",
                          help="keep only job records (smaller output)")
    generate.add_argument("--output", type=Path, required=True, help="output JSON path")

    explain = subparsers.add_parser("explain", help="answer a PXQL query")
    explain.add_argument("--log", type=Path, required=True, help="execution log JSON")
    explain.add_argument("--query", type=Path,
                         help="file containing the PXQL query (default: stdin)")
    explain.add_argument("--width", type=int, default=3, help="explanation width")
    explain.add_argument("--technique", default="perfxplain",
                         choices=["perfxplain", "ruleofthumb", "simbutdiff"])
    explain.add_argument("--auto-despite", action="store_true",
                         help="let PerfXplain extend the despite clause first")

    evaluate = subparsers.add_parser("evaluate", help="compare techniques on a paper query")
    evaluate.add_argument("--log", type=Path, required=True, help="execution log JSON")
    evaluate.add_argument("--query-name", choices=sorted(PAPER_QUERIES),
                          default="WhySlowerDespiteSameNumInstances")
    evaluate.add_argument("--widths", type=int, nargs="+", default=[0, 1, 2, 3])
    evaluate.add_argument("--repetitions", type=int, default=3)
    evaluate.add_argument("--seed", type=int, default=0)
    return parser


def _cmd_generate_log(args: argparse.Namespace) -> int:
    grid = _GRIDS[args.grid]()
    print(f"Simulating {len(grid)} configurations "
          f"({args.repetitions} repetition(s), seed {args.seed})...", file=sys.stderr)
    log = build_experiment_log(
        grid, seed=args.seed, repetitions=args.repetitions,
        include_tasks=not args.no_tasks,
    )
    log.save(args.output)
    print(f"Wrote {log.num_jobs} jobs and {log.num_tasks} tasks to {args.output}",
          file=sys.stderr)
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    log = ExecutionLog.load(args.log)
    text = args.query.read_text(encoding="utf-8") if args.query else sys.stdin.read()
    query = parse_query(text)
    px = PerfXplain(log)
    explanation = px.explain(query, width=args.width, technique=args.technique,
                             auto_despite=args.auto_despite)
    print(explanation.format())
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    log = ExecutionLog.load(args.log)
    query = PAPER_QUERIES[args.query_name]()
    pair = find_pair_of_interest(log, query)
    query = query.with_pair(*pair)
    print(f"Pair of interest: {pair[0]} vs {pair[1]}", file=sys.stderr)
    techniques = [PerfXplainExplainer(), RuleOfThumbExplainer(), SimButDiffExplainer()]
    sweep = evaluate_precision_vs_width(
        log, query, techniques, widths=tuple(args.widths),
        repetitions=args.repetitions, seed=args.seed,
    )
    print("Precision on the held-out log:")
    print(sweep.format_table("precision"))
    print("\nGenerality on the held-out log:")
    print(sweep.format_table("generality"))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate-log": _cmd_generate_log,
        "explain": _cmd_explain,
        "evaluate": _cmd_evaluate,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
