"""Command-line interface for the PerfXplain reproduction.

Three subcommands cover the typical workflow:

``repro-perfxplain generate-log --grid small --output log.json``
    Simulate a workload grid and save the execution log as JSON.

``repro-perfxplain explain --log log.json --query query.pxql``
    Parse a PXQL query (from a file or stdin) and print the explanation,
    as text or (with ``--format json``) as a machine-readable report.

``repro-perfxplain evaluate --log log.json --query-name WhySlowerDespiteSameNumInstances``
    Run the cross-validated precision-vs-width comparison of every
    registered technique for one of the paper's queries.

The ``--technique`` argument accepts any name in the explainer registry;
``--plugin`` imports a module (dotted name or ``.py`` path) before
dispatch, so custom techniques registered with ``@register_explainer``
work end-to-end from the command line::

    repro-perfxplain explain --log log.json --plugin my_explainers \\
        --technique my-technique --query query.pxql
"""

from __future__ import annotations

import argparse
import importlib
import importlib.util
import json
import sys
from pathlib import Path

from repro.core.api import PerfXplain, PerfXplainSession
from repro.core.evaluation import evaluate_precision_vs_width
from repro.core.pxql.parser import parse_query
from repro.core.queries import PAPER_QUERIES
from repro.core.report import Report, ReportEntry
from repro.core.reporting import sweep_to_dict
from repro.exceptions import ReproError
from repro.logs.store import ExecutionLog
from repro.workloads.grid import build_experiment_log, paper_grid, small_grid, tiny_grid
from repro.workloads.runner import ENGINES
from repro.workloads.scenarios import (
    build_catalog_log,
    build_scenario_log,
    get_scenario,
    scenario_catalog,
)

_GRIDS = {"tiny": tiny_grid, "small": small_grid, "paper": paper_grid}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-perfxplain",
        description="PerfXplain reproduction: explain MapReduce performance differences.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate-log", help="simulate a workload grid")
    generate.add_argument("--grid", choices=sorted(_GRIDS), default="small",
                          help="which parameter grid to run (default: small)")
    generate.add_argument("--seed", type=int, default=7, help="base random seed")
    generate.add_argument("--repetitions", type=int, default=1,
                          help="how many times to run each grid point")
    generate.add_argument("--no-tasks", action="store_true",
                          help="keep only job records (smaller output)")
    generate.add_argument("--output", type=Path, required=True, help="output JSON path")
    generate.add_argument("--engine", choices=sorted(ENGINES), default="event",
                          help="simulation engine (default: event)")
    generate.add_argument("--workers", type=int, default=1,
                          help="worker processes for the sweep (default: 1)")

    scenario = subparsers.add_parser(
        "generate-scenario",
        help="simulate a scenario-catalog pathology into an execution log",
    )
    scenario.add_argument("--scenario", default="all",
                          choices=sorted(scenario_catalog()) + ["all"],
                          help="catalog scenario to simulate (default: all)")
    scenario.add_argument("--seed", type=int, default=0, help="base random seed")
    scenario.add_argument("--engine", choices=sorted(ENGINES), default="event",
                          help="simulation engine (default: event)")
    scenario.add_argument("--output", type=Path, required=True, help="output JSON path")

    explain = subparsers.add_parser("explain", help="answer one or more PXQL queries")
    explain.add_argument("--log", type=Path, required=True, help="execution log JSON")
    explain.add_argument("--query", type=Path, action="append",
                         help="file containing a PXQL query; repeatable "
                              "(default: one query from stdin)")
    explain.add_argument("--width", type=int, default=3, help="explanation width")
    explain.add_argument("--technique", default="perfxplain",
                         help="registered technique name (built-ins: "
                              "perfxplain, ruleofthumb, simbutdiff)")
    explain.add_argument("--auto-despite", action="store_true",
                         help="let PerfXplain extend the despite clause first")
    explain.add_argument("--format", choices=["text", "json"], default="text",
                         help="output format (default: text)")
    explain.add_argument("--plugin", action="append", default=[],
                         help="module (dotted name or .py path) to import "
                              "before dispatch; may register explainers")

    evaluate = subparsers.add_parser("evaluate", help="compare techniques on a paper query")
    evaluate.add_argument("--log", type=Path, required=True, help="execution log JSON")
    evaluate.add_argument("--query-name", choices=sorted(PAPER_QUERIES),
                          default="WhySlowerDespiteSameNumInstances")
    evaluate.add_argument("--widths", type=int, nargs="+", default=[0, 1, 2, 3])
    evaluate.add_argument("--repetitions", type=int, default=3)
    evaluate.add_argument("--seed", type=int, default=0)
    evaluate.add_argument("--technique", action="append", default=None, dest="techniques",
                          help="technique to evaluate; repeatable "
                               "(default: every registered technique)")
    evaluate.add_argument("--format", choices=["text", "json"], default="text",
                          help="output format (default: text)")
    evaluate.add_argument("--plugin", action="append", default=[],
                          help="module (dotted name or .py path) to import "
                               "before dispatch; may register explainers")
    return parser


def _load_plugins(specs: list[str]) -> None:
    """Import each plugin module so its ``@register_explainer`` calls run."""
    for spec in dict.fromkeys(specs):
        path = Path(spec)
        if path.suffix == ".py":
            if not path.exists():
                raise ReproError(f"plugin file {spec!r} does not exist")
            module_spec = importlib.util.spec_from_file_location(path.stem, path)
            if module_spec is None or module_spec.loader is None:
                raise ReproError(f"cannot load plugin from {spec!r}")
            module = importlib.util.module_from_spec(module_spec)
            added = path.stem not in sys.modules
            if added:
                sys.modules[path.stem] = module
            try:
                module_spec.loader.exec_module(module)
            except ReproError:
                if added:
                    sys.modules.pop(path.stem, None)
                raise
            except Exception as error:
                if added:
                    sys.modules.pop(path.stem, None)
                raise ReproError(f"plugin {spec!r} failed to load: {error}") from error
        else:
            try:
                importlib.import_module(spec)
            except ReproError:
                raise
            except Exception as error:
                raise ReproError(
                    f"cannot import plugin module {spec!r}: {error}"
                ) from error


def _cmd_generate_log(args: argparse.Namespace) -> int:
    grid = _GRIDS[args.grid]()
    print(f"Simulating {len(grid)} configurations "
          f"({args.repetitions} repetition(s), seed {args.seed})...", file=sys.stderr)
    log = build_experiment_log(
        grid, seed=args.seed, repetitions=args.repetitions,
        include_tasks=not args.no_tasks, engine=args.engine,
        workers=args.workers,
    )
    log.save(args.output)
    print(f"Wrote {log.num_jobs} jobs and {log.num_tasks} tasks to {args.output}",
          file=sys.stderr)
    return 0


def _cmd_generate_scenario(args: argparse.Namespace) -> int:
    if args.scenario == "all":
        names = sorted(scenario_catalog())
        print(f"Simulating all {len(names)} catalog scenarios...", file=sys.stderr)
        log = build_catalog_log(seed=args.seed, engine=args.engine)
    else:
        scenario = get_scenario(args.scenario)
        print(f"Simulating scenario {scenario.name!r} ({scenario.knobs})...",
              file=sys.stderr)
        log = build_scenario_log(scenario, seed=args.seed, engine=args.engine)
    log.save(args.output)
    print(f"Wrote {log.num_jobs} jobs and {log.num_tasks} tasks to {args.output}",
          file=sys.stderr)
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    _load_plugins(args.plugin)
    log = ExecutionLog.load(args.log)
    if args.query:
        texts = [path.read_text(encoding="utf-8") for path in args.query]
    else:
        texts = [sys.stdin.read()]
    queries = [parse_query(text) for text in texts]

    session = PerfXplainSession(log)
    report = Report()
    for query in queries:
        resolved = session.resolve(query)
        explanation = session.explain(
            resolved, width=args.width, technique=args.technique,
            auto_despite=args.auto_despite,
        )
        report.add(ReportEntry.for_query(resolved, explanation))

    if args.format == "json":
        print(report.to_json(indent=2))
    else:
        for entry in report:
            if entry.first_id and entry.second_id:
                print(f"Pair of interest: {entry.first_id} vs {entry.second_id}",
                      file=sys.stderr)
            assert entry.explanation is not None
            print(entry.explanation.format())
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    _load_plugins(args.plugin)
    log = ExecutionLog.load(args.log)
    px = PerfXplain(log, seed=args.seed)
    query = px.resolve(PAPER_QUERIES[args.query_name]())
    print(f"Pair of interest: {query.first_id} vs {query.second_id}", file=sys.stderr)
    if args.techniques:
        techniques = [px.technique(name) for name in args.techniques]
    else:
        techniques = list(px.techniques().values())
    sweep = evaluate_precision_vs_width(
        log, query, techniques, widths=tuple(args.widths),
        repetitions=args.repetitions, seed=args.seed,
    )
    if args.format == "json":
        print(json.dumps(
            {
                "query": str(query),
                "pair": [query.first_id, query.second_id],
                "results": sweep_to_dict(sweep),
            },
            indent=2, sort_keys=True,
        ))
    else:
        print("Precision on the held-out log:")
        print(sweep.format_table("precision"))
        print("\nGenerality on the held-out log:")
        print(sweep.format_table("generality"))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate-log": _cmd_generate_log,
        "generate-scenario": _cmd_generate_scenario,
        "explain": _cmd_explain,
        "evaluate": _cmd_evaluate,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
