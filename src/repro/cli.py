"""Command-line interface for the PerfXplain reproduction.

The subcommands cover the typical workflow:

``repro-perfxplain generate-log --grid small --output log.json``
    Simulate a workload grid and save the execution log.  The output
    suffix picks the format: ``.json`` (pretty document), ``.jsonl``
    (streaming, one record per line), and either with a trailing ``.gz``
    for transparent gzip compression.

``repro-perfxplain ingest --input job.jhist --output log.jsonl``
    Parse a *real* log — Hadoop JobHistory (``.jhist``) or a Spark event
    log, sniffed automatically — into canonical job/task records and save
    them as a native execution log.  ``--strict`` turns skipped lines,
    unknown events and truncated entities into hard errors.

``repro-perfxplain detect --log log.jsonl``
    Run the deterministic rule-based detectors (data skew, stragglers,
    misconfiguration, cluster underuse) over a log — native or real —
    each answering its own PXQL query (or one given with ``--query``)
    with threshold evidence attached to the explanation metrics.

``repro-perfxplain explain --log log.json --query query.pxql``
    Parse a PXQL query (from a file or stdin) and print the explanation,
    as text or (with ``--format json``) as a machine-readable report.

``repro-perfxplain evaluate --log log.json --query-name WhySlowerDespiteSameNumInstances``
    Run the cross-validated precision-vs-width comparison of every
    registered technique for one of the paper's queries.

``repro-perfxplain diff --before monday.jsonl --after tuesday.jsonl``
    Explain a regression between two runs: merge the logs under a
    cross-log view, auto-generate the job-level comparison, learn an
    explanation for the highest-contrast cross-run pair, run every
    deterministic detector on both sides, and print the "what changed
    and why" report (``--format json`` for the machine-readable form).
    Inputs are format-sniffed like ``ingest``, so native logs, Hadoop
    ``.jhist`` and Spark event logs all work; with ``--url`` the names
    address logs served by a running ``serve`` instance instead
    (``POST /v1/diff``).

``repro-perfxplain serve --log prod=prod.jsonl.gz --log staging=st.json --port 8000``
    Run the long-lived query service: every ``--log name=path`` registers
    an execution log in the catalog (lazily loaded on first query), and
    PXQL queries are answered as JSON over HTTP (``POST /v1/query``,
    ``POST /v1/batch``, ``POST /v1/evaluate``, ``POST /v1/diff``,
    ``POST /v1/logs/{name}/append``; ``GET /v1/logs`` for catalog and
    cache statistics).  See :class:`repro.service.ServiceClient` for the
    matching client.

``repro-perfxplain append --url http://127.0.0.1:8000 --log prod --input live.jsonl``
    Tail a growing ``.jsonl`` record file into a served log: records
    already present are batched into ``POST /v1/logs/{name}/append``
    calls, and with ``--follow`` the command keeps watching the file and
    ships new lines as they appear — live, O(delta) growth of the
    server's log, no restart.

``explain`` and ``evaluate`` are thin shells over the same service layer
``serve`` exposes: they build the versioned request objects of
:mod:`repro.service.protocol` and execute them in-process, so the
programmatic, CLI and HTTP entry points share one code path.

The ``--technique`` argument accepts any name in the explainer registry;
``--plugin`` imports a module (dotted name or ``.py`` path) before
dispatch, so custom techniques registered with ``@register_explainer``
work end-to-end from the command line::

    repro-perfxplain explain --log log.json --plugin my_explainers \\
        --technique my-technique --query query.pxql
"""

from __future__ import annotations

import argparse
import importlib
import importlib.util
import json
import sys
import time
from pathlib import Path

from repro.core.queries import PAPER_QUERIES
from repro.core.registry import create_explainer
from repro.core.report import Report
from repro.core.reporting import summary_table
from repro.detectors import DETECTOR_TECHNIQUES
from repro.exceptions import ReproError
from repro.ingest import HADOOP_JHIST, SPARK_EVENTLOG, ingest_path, load_execution_log
from repro.logs.parser import parse_jsonl_line
from repro.logs.records import JobRecord
from repro.logs.writer import LOG_SUFFIXES
from repro.core.explainer import PerfXplainConfig
from repro.service import (
    DEFAULT_MAX_WORKERS,
    AppendResponse,
    DiffRequest,
    DiffResponse,
    ErrorCode,
    ErrorResponse,
    EvaluateRequest,
    LogCatalog,
    PerfXplainHTTPServer,
    PerfXplainService,
    QueryRequest,
    ServiceClient,
)
from repro.workloads.grid import build_experiment_log, paper_grid, small_grid, tiny_grid
from repro.workloads.runner import ENGINES
from repro.workloads.scenarios import (
    build_catalog_log,
    build_scenario_log,
    get_scenario,
    scenario_catalog,
)

_GRIDS = {"tiny": tiny_grid, "small": small_grid, "paper": paper_grid}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-perfxplain",
        description="PerfXplain reproduction: explain MapReduce performance differences.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate-log", help="simulate a workload grid")
    generate.add_argument("--grid", choices=sorted(_GRIDS), default="small",
                          help="which parameter grid to run (default: small)")
    generate.add_argument("--seed", type=int, default=7, help="base random seed")
    generate.add_argument("--repetitions", type=int, default=1,
                          help="how many times to run each grid point")
    generate.add_argument("--no-tasks", action="store_true",
                          help="keep only job records (smaller output)")
    generate.add_argument("--output", type=Path, required=True,
                          help="output path (.json, .jsonl, or either + .gz)")
    generate.add_argument("--engine", choices=sorted(ENGINES), default="event",
                          help="simulation engine (default: event)")
    generate.add_argument("--workers", type=int, default=1,
                          help="worker processes for the sweep (default: 1)")

    scenario = subparsers.add_parser(
        "generate-scenario",
        help="simulate a scenario-catalog pathology into an execution log",
    )
    scenario.add_argument("--scenario", default="all",
                          choices=sorted(scenario_catalog()) + ["all"],
                          help="catalog scenario to simulate (default: all)")
    scenario.add_argument("--seed", type=int, default=0, help="base random seed")
    scenario.add_argument("--engine", choices=sorted(ENGINES), default="event",
                          help="simulation engine (default: event)")
    scenario.add_argument("--output", type=Path, required=True,
                          help="output path (.json, .jsonl, or either + .gz)")

    ingest = subparsers.add_parser(
        "ingest",
        help="convert a real Hadoop/Spark log into a native execution log",
        description="Parse a Hadoop JobHistory (.jhist) or Spark event-log "
                    "file into canonical job/task records and save them as a "
                    "native execution log.  The input format is sniffed from "
                    "the file head unless --input-format pins it.  Ingestion "
                    "statistics (lines, events, skipped lines, unknown "
                    "events, truncated entities) are printed to stderr.",
    )
    ingest.add_argument("--input", type=Path, required=True,
                        help="real log file (.jhist or Spark event log; "
                             ".gz accepted)")
    ingest.add_argument("--input-format", dest="input_format", default="auto",
                        choices=["auto", HADOOP_JHIST, SPARK_EVENTLOG],
                        help="source format (default: sniff from the file)")
    ingest.add_argument("--output", type=Path, required=True,
                        help="output path (.json, .jsonl, or either + .gz)")
    ingest.add_argument("--strict", action="store_true",
                        help="fail on malformed lines, unknown events or "
                             "truncated entities instead of skipping them")

    detect = subparsers.add_parser(
        "detect",
        help="run deterministic rule-based detectors over a log",
        description="Run rule-based detectors (data skew, stragglers, "
                    "misconfiguration, cluster underuse) over an execution "
                    "log — native or real Hadoop/Spark, sniffed like "
                    "ingest.  Each detector answers a PXQL query (its own "
                    "default, or --query) through the same service layer "
                    "as explain; a detector whose rules do not fire "
                    "reports 'no evidence' and does not fail the run.",
    )
    detect.add_argument("--log", type=Path, required=True,
                        help="execution log (native or real Hadoop/Spark)")
    detect.add_argument("--detector", action="append", default=None,
                        dest="detectors", choices=sorted(DETECTOR_TECHNIQUES),
                        help="detector technique to run; repeatable "
                             "(default: all detectors)")
    detect.add_argument("--query", type=Path, default=None,
                        help="file containing a PXQL query to pose to every "
                             "detector (default: each detector's own query)")
    detect.add_argument("--width", type=int, default=3, help="explanation width")
    detect.add_argument("--format", choices=["text", "json"], default="text",
                        help="output format (default: text)")

    explain = subparsers.add_parser("explain", help="answer one or more PXQL queries")
    explain.add_argument("--log", type=Path, required=True, help="execution log JSON")
    explain.add_argument("--query", type=Path, action="append",
                         help="file containing a PXQL query; repeatable "
                              "(default: one query from stdin)")
    explain.add_argument("--width", type=int, default=3, help="explanation width")
    explain.add_argument("--technique", default="perfxplain",
                         help="registered technique name (built-ins: "
                              "perfxplain, ruleofthumb, simbutdiff)")
    explain.add_argument("--auto-despite", action="store_true",
                         help="let PerfXplain extend the despite clause first")
    explain.add_argument("--format", choices=["text", "json"], default="text",
                         help="output format (default: text)")
    explain.add_argument("--plugin", action="append", default=[],
                         help="module (dotted name or .py path) to import "
                              "before dispatch; may register explainers")

    evaluate = subparsers.add_parser("evaluate", help="compare techniques on a paper query")
    evaluate.add_argument("--log", type=Path, required=True, help="execution log JSON")
    evaluate.add_argument("--query-name", choices=sorted(PAPER_QUERIES),
                          default="WhySlowerDespiteSameNumInstances")
    evaluate.add_argument("--widths", type=int, nargs="+", default=[0, 1, 2, 3])
    evaluate.add_argument("--repetitions", type=int, default=3)
    evaluate.add_argument("--seed", type=int, default=0)
    evaluate.add_argument("--technique", action="append", default=None, dest="techniques",
                          help="technique to evaluate; repeatable "
                               "(default: every registered technique)")
    evaluate.add_argument("--format", choices=["text", "json"], default="text",
                          help="output format (default: text)")
    evaluate.add_argument("--plugin", action="append", default=[],
                          help="module (dotted name or .py path) to import "
                               "before dispatch; may register explainers")

    diff = subparsers.add_parser(
        "diff",
        help="explain a performance regression between two runs",
        description="Compare a before and an after execution log: the "
                    "logs are merged under a cross-log view, a job-level "
                    "PXQL comparison is generated automatically, the "
                    "learned explainer runs on the highest-contrast "
                    "cross-run pair, every deterministic detector runs "
                    "on both sides, and config/metric deltas are "
                    "reported.  Inputs are format-sniffed (native, "
                    "Hadoop .jhist, Spark event logs); with --url they "
                    "name logs served by a running service instead.",
    )
    diff.add_argument("--before", required=True,
                      help="baseline execution log: a file path, or a "
                           "served log name with --url")
    diff.add_argument("--after", required=True,
                      help="suspect execution log: a file path, or a "
                           "served log name with --url")
    diff.add_argument("--url", default=None,
                      help="base URL of a running service; --before/--after "
                           "then name logs in its catalog (POST /v1/diff)")
    diff.add_argument("--width", type=int, default=None,
                      help="explanation width (default: the configured width)")
    diff.add_argument("--technique", default="perfxplain",
                      help="learned technique for the cross-run pair "
                           "(default: perfxplain)")
    diff.add_argument("--workers", type=int, default=1,
                      help="processes the cross-run pair filtering shards "
                           "across; the report is bit-identical for every "
                           "setting (default: 1)")
    diff.add_argument("--seed", type=int, default=0,
                      help="seed for the learned explainer (default: 0)")
    diff.add_argument("--format", choices=["text", "json"], default="text",
                      help="output format (default: text)")
    diff.add_argument("--plugin", action="append", default=[],
                      help="module (dotted name or .py path) to import "
                           "before dispatch; may register explainers")

    serve = subparsers.add_parser(
        "serve",
        help="run the long-lived query service over HTTP",
        description="Serve a catalog of execution logs as a JSON-over-HTTP "
                    "query service.  Logs are loaded lazily on first query "
                    "and each gets a shared session, so repeated traffic "
                    "reuses record blocks, training matrices and whole "
                    "explanations.  Endpoints: POST /v1/query, /v1/batch, "
                    "/v1/evaluate, /v1/diff; GET /v1/logs (catalog + cache "
                    "stats), /v1/metrics (latency percentiles), /v1/health.",
    )
    serve.add_argument("--log", action="append", required=True, metavar="NAME=PATH",
                       help="register an execution log under NAME (repeatable; "
                            "a bare PATH uses the file stem as the name); "
                            "accepts .json, .jsonl and gzipped variants")
    serve.add_argument("--host", default="127.0.0.1",
                       help="interface to bind (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8000,
                       help="TCP port; 0 picks a free one (default: 8000)")
    serve.add_argument("--workers", type=int, default=DEFAULT_MAX_WORKERS,
                       help="query-executor threads (default: derived from the "
                            f"CPU count, here {DEFAULT_MAX_WORKERS})")
    serve.add_argument("--seed", type=int, default=0,
                       help="seed for every per-log session (default: 0)")
    serve.add_argument("--verbose", action="store_true",
                       help="log one line per handled HTTP request")
    serve.add_argument("--plugin", action="append", default=[],
                       help="module (dotted name or .py path) to import "
                            "before serving; may register explainers")

    append = subparsers.add_parser(
        "append",
        help="tail a growing .jsonl record file into a served log",
        description="Ship job/task records from a .jsonl file into a "
                    "running service via POST /v1/logs/{name}/append.  "
                    "Records already in the file are sent in batches; "
                    "--follow keeps watching the file and appends new "
                    "complete lines as they are written.  Duplicate ids "
                    "reject a batch atomically (HTTP 409), so re-running "
                    "against a log that already holds the records fails "
                    "loudly instead of double-counting.",
    )
    append.add_argument("--url", required=True,
                        help="base URL of the running service "
                             "(e.g. http://127.0.0.1:8000)")
    append.add_argument("--log", required=True,
                        help="catalog name of the served log to grow")
    append.add_argument("--input", type=Path, required=True,
                        help="record-per-line .jsonl file to tail "
                             "(the optional meta header line is skipped)")
    append.add_argument("--batch-size", type=int, default=1000,
                        help="records per append request (default: 1000)")
    append.add_argument("--follow", action="store_true",
                        help="keep watching the file for new lines "
                             "(stop with Ctrl-C)")
    append.add_argument("--poll", type=float, default=1.0,
                        help="seconds between file checks with --follow "
                             "(default: 1.0)")
    return parser


def _load_plugins(specs: list[str]) -> None:
    """Import each plugin module so its ``@register_explainer`` calls run."""
    for spec in dict.fromkeys(specs):
        path = Path(spec)
        if path.suffix == ".py":
            if not path.exists():
                raise ReproError(f"plugin file {spec!r} does not exist")
            module_spec = importlib.util.spec_from_file_location(path.stem, path)
            if module_spec is None or module_spec.loader is None:
                raise ReproError(f"cannot load plugin from {spec!r}")
            module = importlib.util.module_from_spec(module_spec)
            added = path.stem not in sys.modules
            if added:
                sys.modules[path.stem] = module
            try:
                module_spec.loader.exec_module(module)
            except ReproError:
                if added:
                    sys.modules.pop(path.stem, None)
                raise
            except Exception as error:
                if added:
                    sys.modules.pop(path.stem, None)
                raise ReproError(f"plugin {spec!r} failed to load: {error}") from error
        else:
            try:
                importlib.import_module(spec)
            except ReproError:
                raise
            except Exception as error:
                raise ReproError(
                    f"cannot import plugin module {spec!r}: {error}"
                ) from error


def _cmd_generate_log(args: argparse.Namespace) -> int:
    grid = _GRIDS[args.grid]()
    print(f"Simulating {len(grid)} configurations "
          f"({args.repetitions} repetition(s), seed {args.seed})...", file=sys.stderr)
    log = build_experiment_log(
        grid, seed=args.seed, repetitions=args.repetitions,
        include_tasks=not args.no_tasks, engine=args.engine,
        workers=args.workers,
    )
    log.save(args.output)
    print(f"Wrote {log.num_jobs} jobs and {log.num_tasks} tasks to {args.output}",
          file=sys.stderr)
    return 0


def _cmd_generate_scenario(args: argparse.Namespace) -> int:
    if args.scenario == "all":
        names = sorted(scenario_catalog())
        print(f"Simulating all {len(names)} catalog scenarios...", file=sys.stderr)
        log = build_catalog_log(seed=args.seed, engine=args.engine)
    else:
        scenario = get_scenario(args.scenario)
        print(f"Simulating scenario {scenario.name!r} ({scenario.knobs})...",
              file=sys.stderr)
        log = build_scenario_log(scenario, seed=args.seed, engine=args.engine)
    log.save(args.output)
    print(f"Wrote {log.num_jobs} jobs and {log.num_tasks} tasks to {args.output}",
          file=sys.stderr)
    return 0


def _single_log_service(path: Path) -> PerfXplainService:
    """An in-process service fronting one log under the name ``default``.

    ``explain``, ``evaluate`` and ``detect`` execute through this, so the
    CLI answers queries via exactly the code path the HTTP endpoint uses.
    Loading is eager here — and format-sniffing, so real Hadoop JobHistory
    and Spark event-log files work wherever native logs do — because a
    missing or malformed log file should fail before any query work starts.
    """
    log, _ = load_execution_log(path)
    catalog = LogCatalog()
    catalog.register("default", log)
    return PerfXplainService(catalog)


def _cmd_ingest(args: argparse.Namespace) -> int:
    result = ingest_path(args.input, format=args.input_format, strict=args.strict)
    stats = result.stats
    print(f"Ingested {args.input} [{result.source_format}]: "
          f"{stats.jobs} job(s), {stats.tasks} task(s) "
          f"from {stats.lines} line(s) / {stats.events} event(s)",
          file=sys.stderr)
    if not stats.clean:
        print(f"  skipped lines: {stats.skipped_lines}, "
              f"unknown events: {stats.unknown_events}, "
              f"truncated entities: {stats.truncated_entities}, "
              f"missing counters: {stats.missing_counters}",
              file=sys.stderr)
    result.log.save(args.output)
    print(f"Wrote {result.log.num_jobs} jobs and {result.log.num_tasks} tasks "
          f"to {args.output}", file=sys.stderr)
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    detectors = tuple(args.detectors) if args.detectors else DETECTOR_TECHNIQUES
    query_text = (
        args.query.read_text(encoding="utf-8") if args.query is not None else None
    )
    report: list[dict] = []
    with _single_log_service(args.log) as service:
        for name in detectors:
            text = query_text or create_explainer(name).default_query
            request = QueryRequest(
                log="default", query=text, width=args.width, technique=name,
            )
            item = service.execute(request)
            if isinstance(item, ErrorResponse):
                if item.code == ErrorCode.EXPLANATION_FAILED:
                    # A detector whose rules do not fire is a result, not
                    # a failure: report it and keep going.
                    report.append({"detector": name, "fired": False,
                                   "reason": item.message})
                    continue
                raise ReproError(item.message)
            entry = item.entry
            assert entry.explanation is not None
            report.append({
                "detector": name,
                "fired": True,
                "first_id": entry.first_id,
                "second_id": entry.second_id,
                "explanation": entry.explanation,
            })

    if args.format == "json":
        serializable = [
            {**item, "explanation": item["explanation"].to_dict()}
            if item["fired"] else item
            for item in report
        ]
        print(json.dumps(serializable, indent=2, sort_keys=True))
        return 0
    for item in report:
        print(f"== {item['detector']} ==")
        if not item["fired"]:
            print(f"no evidence: {item['reason']}")
            continue
        if item["first_id"] and item["second_id"]:
            print(f"Pair of interest: {item['first_id']} vs {item['second_id']}",
                  file=sys.stderr)
        explanation = item["explanation"]
        print(explanation.format())
        metrics = explanation.metrics
        if metrics is not None and metrics.evidence:
            for key, value in metrics.evidence:
                print(f"  {key} = {value:g}")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    _load_plugins(args.plugin)
    if args.query:
        texts = [path.read_text(encoding="utf-8") for path in args.query]
    else:
        texts = [sys.stdin.read()]
    requests = [
        QueryRequest(
            log="default", query=text, width=args.width,
            technique=args.technique, auto_despite=args.auto_despite,
        )
        for text in texts
    ]
    report = Report()
    with _single_log_service(args.log) as service:
        # Sequential on purpose: every request targets the same log (whose
        # traffic the service serialises anyway), and executing one at a
        # time preserves the pre-service behaviour of aborting on the
        # first failing query without paying for the rest.
        for request in requests:
            item = service.execute(request)
            if isinstance(item, ErrorResponse):
                raise ReproError(item.message)
            report.add(item.entry)

    if args.format == "json":
        print(report.to_json(indent=2))
    else:
        for entry in report:
            if entry.first_id and entry.second_id:
                print(f"Pair of interest: {entry.first_id} vs {entry.second_id}",
                      file=sys.stderr)
            assert entry.explanation is not None
            print(entry.explanation.format())
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    _load_plugins(args.plugin)
    request = EvaluateRequest(
        log="default",
        query=str(PAPER_QUERIES[args.query_name]()),
        widths=tuple(args.widths),
        repetitions=args.repetitions,
        seed=args.seed,
        techniques=tuple(args.techniques) if args.techniques else None,
    )
    with _single_log_service(args.log) as service:
        response = service.execute(request)
    if isinstance(response, ErrorResponse):
        raise ReproError(response.message)
    print(f"Pair of interest: {response.first_id} vs {response.second_id}",
          file=sys.stderr)
    if args.format == "json":
        print(json.dumps(response.to_dict(), indent=2, sort_keys=True))
    else:
        print("Precision on the held-out log:")
        print(summary_table(response.results, "precision"))
        print("\nGenerality on the held-out log:")
        print(summary_table(response.results, "generality"))
    return 0


def _parse_log_specs(specs: list[str]) -> list[tuple[str, Path]]:
    """``NAME=PATH`` (or bare ``PATH``) serve arguments -> (name, path)."""
    entries: list[tuple[str, Path]] = []
    for spec in specs:
        name, separator, path_text = spec.partition("=")
        if separator:
            name = name.strip()
            if not name or not path_text:
                raise ReproError(
                    f"invalid --log {spec!r}: expected NAME=PATH with both parts"
                )
            entries.append((name, Path(path_text)))
        else:
            path = Path(spec)
            name = path.name
            for suffix in LOG_SUFFIXES:
                if name.lower().endswith(suffix):
                    name = name[: -len(suffix)]
                    break
            if not name:
                raise ReproError(f"cannot derive a log name from {spec!r}")
            entries.append((name, path))
    return entries


def _cmd_append(args: argparse.Namespace) -> int:
    if args.batch_size < 1:
        raise ReproError("--batch-size must be >= 1")
    if not args.input.exists():
        raise ReproError(f"input file {args.input} does not exist")
    client = ServiceClient(args.url)
    jobs: list = []
    tasks: list = []
    sent_jobs = sent_tasks = 0
    line_number = 0

    def flush() -> None:
        nonlocal sent_jobs, sent_tasks
        if not jobs and not tasks:
            return
        response = client.append(args.log, jobs=tuple(jobs), tasks=tuple(tasks))
        if isinstance(response, ErrorResponse):
            raise ReproError(f"append rejected ({response.code}): {response.message}")
        assert isinstance(response, AppendResponse)
        sent_jobs += len(jobs)
        sent_tasks += len(tasks)
        print(f"appended {len(jobs)} job(s), {len(tasks)} task(s); "
              f"log {args.log!r} now holds {response.num_jobs} jobs, "
              f"{response.num_tasks} tasks", file=sys.stderr)
        jobs.clear()
        tasks.clear()

    def take(line: str) -> None:
        nonlocal line_number
        line_number += 1
        record = parse_jsonl_line(line, line_number)
        if record is None:
            return
        (jobs if isinstance(record, JobRecord) else tasks).append(record)
        if len(jobs) + len(tasks) >= args.batch_size:
            flush()

    try:
        with open(args.input, "r", encoding="utf-8") as handle:
            # Manual buffering so --follow never parses a half-written
            # line: only text up to the last newline is consumed; the
            # remainder waits for the writer to finish it.
            pending = ""
            while True:
                chunk = handle.read()
                if chunk:
                    *complete, pending = (pending + chunk).split("\n")
                    for line in complete:
                        take(line)
                    continue
                if not args.follow:
                    break
                flush()
                time.sleep(args.poll)
            if pending.strip():
                # No trailing newline and no writer to wait for: the
                # final line is complete by definition.
                take(pending)
            flush()
    except KeyboardInterrupt:
        flush()
        print("stopped", file=sys.stderr)
    print(f"done: {sent_jobs} job(s) and {sent_tasks} task(s) appended "
          f"from {args.input}", file=sys.stderr)
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    _load_plugins(args.plugin)
    if args.url:
        client = ServiceClient(args.url)
        response = client.diff(
            args.before, args.after, width=args.width, technique=args.technique
        )
    else:
        # Local mode mirrors the served path exactly: load both logs,
        # register them in a throwaway catalog, and execute the same
        # DiffRequest the HTTP endpoint would — one code path, and the
        # report is bit-identical to a served diff of the same logs.
        before_log, _ = load_execution_log(Path(args.before))
        after_log, _ = load_execution_log(Path(args.after))
        catalog = LogCatalog(
            config=PerfXplainConfig(pair_workers=args.workers), seed=args.seed
        )
        catalog.register("before", before_log)
        catalog.register("after", after_log)
        with PerfXplainService(catalog) as service:
            response = service.execute(
                DiffRequest(
                    before="before",
                    after="after",
                    width=args.width,
                    technique=args.technique,
                )
            )
    if isinstance(response, ErrorResponse):
        raise ReproError(response.message)
    assert isinstance(response, DiffResponse)
    if args.format == "json":
        print(response.report.to_json(indent=2))
    else:
        print(response.report.format())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    _load_plugins(args.plugin)
    catalog = LogCatalog(seed=args.seed)
    for name, path in _parse_log_specs(args.log):
        catalog.register_path(name, path)
    service = PerfXplainService(catalog, max_workers=args.workers)
    server = PerfXplainHTTPServer(
        service, host=args.host, port=args.port, verbose=args.verbose
    )
    names = ", ".join(catalog.names())
    print(f"Serving {len(catalog)} log(s) [{names}] on {server.url}", file=sys.stderr)
    print("Endpoints: POST /v1/query /v1/batch /v1/evaluate /v1/diff "
          "/v1/logs/{name}/append; GET /v1/logs /v1/metrics /v1/health",
          file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.stop()
        service.close()
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate-log": _cmd_generate_log,
        "generate-scenario": _cmd_generate_scenario,
        "ingest": _cmd_ingest,
        "detect": _cmd_detect,
        "explain": _cmd_explain,
        "evaluate": _cmd_evaluate,
        "diff": _cmd_diff,
        "serve": _cmd_serve,
        "append": _cmd_append,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
