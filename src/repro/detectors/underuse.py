"""Cluster-underuse / input-growth detector.

The paper's motivating example, as a deterministic rule.  Two regimes of
the same phenomenon — runtime tracks the *wave structure*, not the input
size:

* **Underuse** (durations similar despite different inputs): both jobs
  finished their maps in a single wave because neither input fills the
  cluster's map slots.  The explanation is the shared wave structure —
  ``map_waves`` (same, and equal to one), the block size and slot count
  that produce it — plus the task-count difference the input change
  *did* cause.
* **Growth** (one job slower, with more input): the input grew past the
  slot capacity and added map waves; the explanation is the input-volume
  and wave features that moved with the duration.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.features import FeatureSchema
from repro.core.pairs import (
    COMPARE_SUFFIX,
    IS_SAME_SUFFIX,
    SAME,
    SIMILAR,
)
from repro.core.pxql.ast import Comparison, Operator
from repro.core.pxql.query import EntityKind, PXQLQuery
from repro.core.registry import register_explainer
from repro.detectors.base import (
    Finding,
    RuleBasedDetector,
    duration_direction,
    numeric_feature,
    relative_difference,
    slower_faster,
)
from repro.logs.records import ExecutionRecord, FeatureValue
from repro.logs.store import ExecutionLog

#: Input-volume and wave features that explain a growth-driven slowdown.
GROWTH_FEATURES = (
    "inputsize",
    "input_records",
    "num_map_tasks",
    "map_waves",
    "hdfs_bytes_read",
    "hdfs_bytes_written",
    "map_input_records",
    "map_output_bytes",
    "map_output_records",
    "file_bytes_written",
)

#: Wave-structure features that explain an underused cluster.
STRUCTURE_FEATURES = ("map_waves", "blocksize", "cluster_map_slots")


@register_explainer("detect-underuse", override=True)
class ClusterUnderuseDetector(RuleBasedDetector):
    """Explain runtime by wave structure: underused cluster or grown input."""

    name = "detect-underuse"
    default_query = (
        "FOR JOBS ?, ?\n"
        "DESPITE pig_script_isSame = T AND inputsize_isSame = F\n"
        "OBSERVED duration_compare = SIM\n"
        "EXPECTED duration_compare = GT"
    )

    def findings(
        self,
        log: ExecutionLog,
        query: PXQLQuery,
        schema: FeatureSchema,
        first: ExecutionRecord,
        second: ExecutionRecord,
        pair_values: Mapping[str, FeatureValue],
    ) -> list[Finding]:
        if query.entity is not EntityKind.JOB:
            return []
        direction = duration_direction(pair_values)
        if direction is None:
            return []
        if direction == SIMILAR:
            return self._underuse_findings(schema, first, second, pair_values)
        return self._growth_findings(schema, first, second, pair_values, direction)

    def _underuse_findings(
        self,
        schema: FeatureSchema,
        first: ExecutionRecord,
        second: ExecutionRecord,
        pair_values: Mapping[str, FeatureValue],
    ) -> list[Finding]:
        waves_first = numeric_feature(first, "map_waves")
        waves_second = numeric_feature(second, "map_waves")
        if waves_first is None or waves_second is None:
            return []
        if waves_first != waves_second or waves_first > 1:
            return []
        if pair_values.get("inputsize" + COMPARE_SUFFIX) == SIMILAR:
            return []  # similar inputs taking similar time needs no explaining
        evidence = [
            ("map_waves", waves_first),
        ]
        for name in ("num_map_tasks", "cluster_map_slots"):
            value = numeric_feature(first, name)
            if value is not None:
                evidence.append((name, value))
        gate = tuple(evidence)
        lead = Finding(
            atom=Comparison("map_waves" + IS_SAME_SUFFIX, Operator.EQ, SAME),
            score=2.0,
            evidence=gate,
        )
        findings = [lead]
        for feature, score in (("blocksize", 1.5), ("cluster_map_slots", 1.4)):
            if feature not in schema:
                continue
            if pair_values.get(feature + IS_SAME_SUFFIX) == SAME:
                findings.append(
                    Finding(
                        atom=Comparison(feature + IS_SAME_SUFFIX, Operator.EQ, SAME),
                        score=score,
                        evidence=gate,
                    )
                )
        # The input change did land somewhere: more tasks, same wave count.
        task_cmp = pair_values.get("num_map_tasks" + COMPARE_SUFFIX)
        if task_cmp not in (None, SIMILAR):
            findings.append(
                Finding(
                    atom=Comparison(
                        "num_map_tasks" + COMPARE_SUFFIX, Operator.EQ, task_cmp
                    ),
                    score=1.0,
                    evidence=gate,
                )
            )
        return findings

    def _growth_findings(
        self,
        schema: FeatureSchema,
        first: ExecutionRecord,
        second: ExecutionRecord,
        pair_values: Mapping[str, FeatureValue],
        direction: str,
    ) -> list[Finding]:
        if pair_values.get("inputsize" + COMPARE_SUFFIX) != direction:
            return []  # the input did not move with the duration
        slower, faster = slower_faster(first, second, direction)
        evidence = [
            ("inputsize_faster", numeric_feature(faster, "inputsize") or 0.0),
            ("inputsize_slower", numeric_feature(slower, "inputsize") or 0.0),
        ]
        for name in ("map_waves", "num_map_tasks"):
            value = numeric_feature(slower, name)
            if value is not None:
                evidence.append((name + "_slower", value))
        gate = tuple(evidence)
        findings: list[Finding] = []
        for feature in GROWTH_FEATURES:
            if feature not in schema:
                continue
            if pair_values.get(feature + COMPARE_SUFFIX) != direction:
                continue
            score = relative_difference(
                numeric_feature(first, feature), numeric_feature(second, feature)
            )
            if score > 0.0:
                findings.append(
                    Finding(
                        atom=Comparison(
                            feature + COMPARE_SUFFIX, Operator.EQ, direction
                        ),
                        score=score,
                        evidence=gate,
                    )
                )
        return findings
