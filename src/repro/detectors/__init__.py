"""Deterministic rule-based detectors as first-class techniques.

Importing this package registers four detectors in the explainer
registry (:mod:`repro.core.registry` imports it lazily, so they are
always available by name):

* ``detect-skew`` — reducer data skew (:mod:`repro.detectors.skew`);
* ``detect-straggler`` — straggling tasks / degraded or contended nodes
  (:mod:`repro.detectors.straggler`);
* ``detect-misconfig`` — merge-spill and reducer-count misconfiguration
  (:mod:`repro.detectors.misconfig`);
* ``detect-underuse`` — cluster underuse / input growth
  (:mod:`repro.detectors.underuse`).

Each emits standard :class:`~repro.core.explanation.Explanation` objects
whose metrics carry the rule's threshold evidence, so detector output
flows through the session, service and CLI unchanged.
:func:`~repro.detectors.agreement.score_agreement` runs a detector and a
learned technique on the same query and reports where they cite the same
features — the two-sided validation the scenario suite asserts.
"""

from repro.detectors.agreement import AgreementReport, cited_features, score_agreement
from repro.detectors.base import DEFAULT_DETECTOR_WIDTH, Finding, RuleBasedDetector
from repro.detectors.misconfig import MisconfigurationDetector, merge_passes
from repro.detectors.skew import DataSkewDetector
from repro.detectors.straggler import StragglerDetector
from repro.detectors.underuse import ClusterUnderuseDetector

#: Every detector technique name, in a stable order (the CLI's "all").
DETECTOR_TECHNIQUES = (
    "detect-skew",
    "detect-straggler",
    "detect-misconfig",
    "detect-underuse",
)

#: Which detector(s) apply to which catalog scenario.  Scenarios absent
#: here (cold-hdfs-locality, heterogeneous-hardware, last-task-faster)
#: have no deterministic rule yet — the learned explainer is on its own.
SCENARIO_DETECTORS: dict[str, tuple[str, ...]] = {
    "data-skew": ("detect-skew",),
    "straggler-node": ("detect-straggler",),
    "degraded-node": ("detect-straggler",),
    "background-contention": ("detect-straggler",),
    "merge-misconfiguration": ("detect-misconfig",),
    "reducer-starvation": ("detect-misconfig",),
    "cluster-underuse": ("detect-underuse",),
    "input-growth-step": ("detect-underuse",),
}

__all__ = [
    "AgreementReport",
    "ClusterUnderuseDetector",
    "DataSkewDetector",
    "DEFAULT_DETECTOR_WIDTH",
    "DETECTOR_TECHNIQUES",
    "Finding",
    "MisconfigurationDetector",
    "RuleBasedDetector",
    "SCENARIO_DETECTORS",
    "StragglerDetector",
    "cited_features",
    "merge_passes",
    "score_agreement",
]
