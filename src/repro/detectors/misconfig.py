"""Merge-spill and reducer-count misconfiguration detector.

Two configuration rules from Herodotou's Hadoop performance models:

* **Merge passes.**  The reduce-side merge runs
  ``ceil(log_F(segments))`` on-disk passes for ``io.sort.factor = F``
  over ``segments`` map-output segments (approximated by the job's map
  count).  If the slower job needs more merge passes than the faster one,
  its smaller sort factor is the explanation — plus its spill counters,
  which are the observable symptom.
* **Reducer starvation.**  If the slower job ran its shuffle through
  ``REDUCE_STARVATION_RATIO`` × fewer reducers than the faster one, the
  reduce phase serialised; the reducer count (and the derived
  ``reduce_tasks_factor``) is the explanation.

Both rules require the configuration difference to *align* with the
duration difference — a job that is slower despite the bigger sort
factor is not explained by this detector.
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.core.features import FeatureSchema
from repro.core.pairs import COMPARE_SUFFIX, SIMILAR
from repro.core.pxql.ast import Comparison, Operator
from repro.core.pxql.query import EntityKind, PXQLQuery
from repro.core.registry import register_explainer
from repro.detectors.base import (
    Finding,
    RuleBasedDetector,
    duration_direction,
    numeric_feature,
    relative_difference,
    slower_faster,
)
from repro.logs.records import ExecutionRecord, FeatureValue
from repro.logs.store import ExecutionLog

#: Reducer starvation: the slower job has this many times fewer reducers.
REDUCE_STARVATION_RATIO = 2.0

#: Symptom counters that ride along with a merge-pass finding.
SPILL_FEATURES = ("spilled_records", "file_bytes_written", "file_bytes_read")


def merge_passes(segments: float | None, sort_factor: float | None) -> int | None:
    """``ceil(log_F(segments))`` — Herodotou's on-disk merge pass count."""
    if segments is None or sort_factor is None:
        return None
    if segments <= 1:
        return 0
    if sort_factor < 2:
        return None
    return max(1, math.ceil(math.log(segments) / math.log(sort_factor)))


@register_explainer("detect-misconfig", override=True)
class MisconfigurationDetector(RuleBasedDetector):
    """Explain a slow job by the configuration knob that throttled it."""

    name = "detect-misconfig"
    default_query = (
        "FOR JOBS ?, ?\n"
        "DESPITE pig_script_isSame = T AND inputsize_isSame = T\n"
        "OBSERVED duration_compare = GT\n"
        "EXPECTED duration_compare = SIM"
    )

    def findings(
        self,
        log: ExecutionLog,
        query: PXQLQuery,
        schema: FeatureSchema,
        first: ExecutionRecord,
        second: ExecutionRecord,
        pair_values: Mapping[str, FeatureValue],
    ) -> list[Finding]:
        if query.entity is not EntityKind.JOB:
            return []
        direction = duration_direction(pair_values)
        if direction is None or direction == SIMILAR:
            return []
        slower, faster = slower_faster(first, second, direction)
        findings = self._merge_findings(
            schema, first, second, slower, faster, pair_values, direction
        )
        findings.extend(
            self._starvation_findings(
                schema, first, second, slower, faster, pair_values
            )
        )
        return findings

    def _merge_findings(
        self,
        schema: FeatureSchema,
        first: ExecutionRecord,
        second: ExecutionRecord,
        slower: ExecutionRecord,
        faster: ExecutionRecord,
        pair_values: Mapping[str, FeatureValue],
        direction: str,
    ) -> list[Finding]:
        slow_passes = merge_passes(
            numeric_feature(slower, "num_map_tasks"),
            numeric_feature(slower, "iosortfactor"),
        )
        fast_passes = merge_passes(
            numeric_feature(faster, "num_map_tasks"),
            numeric_feature(faster, "iosortfactor"),
        )
        if slow_passes is None or fast_passes is None or slow_passes <= fast_passes:
            return []
        evidence = (
            ("merge_passes_faster", float(fast_passes)),
            ("merge_passes_slower", float(slow_passes)),
            ("sort_factor_faster", numeric_feature(faster, "iosortfactor") or 0.0),
            ("sort_factor_slower", numeric_feature(slower, "iosortfactor") or 0.0),
        )
        findings: list[Finding] = []
        for feature, score in (("iosortfactor", 2.0), ("iosortmb", 1.5)):
            if feature not in schema:
                continue
            observed = pair_values.get(feature + COMPARE_SUFFIX)
            if observed not in (None, SIMILAR):
                findings.append(
                    Finding(
                        atom=Comparison(
                            feature + COMPARE_SUFFIX, Operator.EQ, observed
                        ),
                        score=score,
                        evidence=evidence,
                    )
                )
        for feature in SPILL_FEATURES:
            if feature not in schema:
                continue
            if pair_values.get(feature + COMPARE_SUFFIX) != direction:
                continue
            score = relative_difference(
                numeric_feature(first, feature), numeric_feature(second, feature)
            )
            if score > 0.0:
                findings.append(
                    Finding(
                        atom=Comparison(
                            feature + COMPARE_SUFFIX, Operator.EQ, direction
                        ),
                        score=score,
                        evidence=evidence,
                    )
                )
        return findings

    def _starvation_findings(
        self,
        schema: FeatureSchema,
        first: ExecutionRecord,
        second: ExecutionRecord,
        slower: ExecutionRecord,
        faster: ExecutionRecord,
        pair_values: Mapping[str, FeatureValue],
    ) -> list[Finding]:
        slow_reduces = numeric_feature(slower, "num_reduce_tasks")
        fast_reduces = numeric_feature(faster, "num_reduce_tasks")
        if (
            slow_reduces is None
            or fast_reduces is None
            or slow_reduces <= 0
            or fast_reduces / slow_reduces < REDUCE_STARVATION_RATIO
        ):
            return []
        evidence = (
            ("reduce_starvation_threshold", REDUCE_STARVATION_RATIO),
            ("reduce_tasks_faster", fast_reduces),
            ("reduce_tasks_slower", slow_reduces),
        )
        findings: list[Finding] = []
        for feature, score in (("num_reduce_tasks", 2.0), ("reduce_tasks_factor", 1.5)):
            if feature not in schema:
                continue
            observed = pair_values.get(feature + COMPARE_SUFFIX)
            if observed not in (None, SIMILAR):
                findings.append(
                    Finding(
                        atom=Comparison(
                            feature + COMPARE_SUFFIX, Operator.EQ, observed
                        ),
                        score=score,
                        evidence=evidence,
                    )
                )
        return findings
