"""Detector-vs-learned agreement scoring.

The detectors exist to give PerfXplain an independent check: a rule that
knows *why* a pathology is slow, run on the same log and the same pair of
interest as the learned explainer.  :func:`score_agreement` does exactly
that — one resolved query, two techniques, and a report of where their
because clauses cite the same raw features.  High agreement on a scenario
log means the learned explanation recovered the mechanism the rule
encodes; the scenario test suite asserts both sides against the catalog's
ground truth.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from repro.core.api import PerfXplain
from repro.core.explanation import Explanation
from repro.core.pairs import raw_feature_of
from repro.core.pxql.query import PXQLQuery
from repro.logs.store import ExecutionLog


def cited_features(explanation: Explanation) -> frozenset[str]:
    """The raw features an explanation's because clause cites."""
    atoms = explanation.because.atoms
    return frozenset(raw_feature_of(atom.feature) for atom in atoms)


@dataclass(frozen=True)
class AgreementReport:
    """Where a detector and a learned technique agree on one query."""

    detector: str
    learned: str
    query: str
    detector_features: frozenset[str]
    learned_features: frozenset[str]
    detector_explanation: Explanation
    learned_explanation: Explanation

    @property
    def shared_features(self) -> frozenset[str]:
        """Raw features both because clauses cite."""
        return self.detector_features & self.learned_features

    @property
    def jaccard(self) -> float:
        """Jaccard similarity of the two cited feature sets."""
        union = self.detector_features | self.learned_features
        if not union:
            return 0.0
        return len(self.shared_features) / len(union)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-compatible form of the report."""
        return {
            "detector": self.detector,
            "learned": self.learned,
            "query": self.query,
            "detector_features": sorted(self.detector_features),
            "learned_features": sorted(self.learned_features),
            "shared_features": sorted(self.shared_features),
            "jaccard": self.jaccard,
            "detector_explanation": self.detector_explanation.to_dict(),
            "learned_explanation": self.learned_explanation.to_dict(),
        }

    def to_json(self, indent: int | None = None) -> str:
        """The :meth:`to_dict` form rendered as a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def score_agreement(
    log: ExecutionLog,
    query: str | PXQLQuery,
    detector: str,
    learned: str = "perfxplain",
    width: int | None = None,
    seed: int = 0,
) -> AgreementReport:
    """Run a detector and a learned technique on one query and compare.

    Both techniques see the *same* resolved pair of interest (unbound
    queries are bound once, up front), so the comparison is about the
    explanation, never about pair selection.

    :param detector: registered detector technique name (``detect-*``).
    :param learned: registered learned technique to compare against.
    :param width: because-clause width for both techniques.
    :param seed: facade seed (pair selection and example sampling).
    """
    facade = PerfXplain(log, seed=seed)
    resolved = facade.resolve(query)
    detector_explanation = facade.explain(resolved, width=width, technique=detector)
    learned_explanation = facade.explain(resolved, width=width, technique=learned)
    return AgreementReport(
        detector=detector,
        learned=learned,
        query=str(resolved),
        detector_features=cited_features(detector_explanation),
        learned_features=cited_features(learned_explanation),
        detector_explanation=detector_explanation,
        learned_explanation=learned_explanation,
    )
