"""Reducer data-skew detector.

The classic MapReduce pathology: a skewed key distribution hands one
reducer a large multiple of the median shuffle share, and that reducer
dominates the job tail.  The rule (after Herodotou's data-distribution
profiles): within the slower task's job, a task-level volume feature is
*skewed* when its maximum share exceeds ``SKEW_RATIO`` × the median
share.  When the gate passes, every volume feature on which the pair's
difference points the same way as the duration difference becomes a
finding — the slower task read/wrote/spilled more because its share of
the data was bigger.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.features import FeatureSchema
from repro.core.pairs import COMPARE_SUFFIX, SIMILAR
from repro.core.pxql.ast import Comparison, Operator
from repro.core.pxql.query import EntityKind, PXQLQuery
from repro.core.registry import register_explainer
from repro.detectors.base import (
    Finding,
    RuleBasedDetector,
    duration_direction,
    median,
    numeric_feature,
    relative_difference,
    slower_faster,
)
from repro.logs.records import ExecutionRecord, FeatureValue, TaskRecord
from repro.logs.store import ExecutionLog

#: A volume feature is skewed when max/median share exceeds this.
SKEW_RATIO = 2.0

#: Task-level volume features skew shows up in, by probe priority.
VOLUME_FEATURES = (
    "shuffle_bytes",
    "inputsize",
    "input_records",
    "output_bytes",
    "output_records",
    "spilled_records",
    "file_bytes_read",
    "hdfs_bytes_written",
    "sorttime",
    "shuffletime",
    "combine_input_records",
    "combine_output_records",
)


@register_explainer("detect-skew", override=True)
class DataSkewDetector(RuleBasedDetector):
    """Explain a slow task by its outsized share of the data."""

    name = "detect-skew"
    default_query = (
        "FOR TASKS ?, ?\n"
        "DESPITE job_id_isSame = T AND task_type_isSame = T\n"
        "OBSERVED duration_compare = GT\n"
        "EXPECTED duration_compare = SIM"
    )

    def findings(
        self,
        log: ExecutionLog,
        query: PXQLQuery,
        schema: FeatureSchema,
        first: ExecutionRecord,
        second: ExecutionRecord,
        pair_values: Mapping[str, FeatureValue],
    ) -> list[Finding]:
        if query.entity is not EntityKind.TASK:
            return []
        direction = duration_direction(pair_values)
        if direction is None or direction == SIMILAR:
            return []
        slower, _ = slower_faster(first, second, direction)
        gate = self._skew_gate(log, slower)
        if gate is None:
            return []
        findings: list[Finding] = []
        for feature in VOLUME_FEATURES:
            if feature not in schema:
                continue
            if pair_values.get(feature + COMPARE_SUFFIX) != direction:
                continue
            score = relative_difference(
                numeric_feature(first, feature), numeric_feature(second, feature)
            )
            if score == 0.0:
                continue
            findings.append(
                Finding(
                    atom=Comparison(feature + COMPARE_SUFFIX, Operator.EQ, direction),
                    score=score,
                    evidence=gate,
                )
            )
        return findings

    def _skew_gate(
        self, log: ExecutionLog, slower: ExecutionRecord
    ) -> tuple[tuple[str, float], ...] | None:
        """Threshold evidence when the slower task's peer group is skewed."""
        if not isinstance(slower, TaskRecord):
            return None
        task_type = slower.features.get("task_type")
        peers = [
            task
            for task in log.tasks_of_job(slower.job_id)
            if task.features.get("task_type") == task_type
        ]
        if len(peers) < 3:
            return None
        for feature in VOLUME_FEATURES:
            shares = [
                value
                for value in (numeric_feature(task, feature) for task in peers)
                if value is not None
            ]
            if len(shares) < 3:
                continue
            middle = median(shares)
            if middle is None or middle <= 0:
                continue
            ratio = max(shares) / middle
            if ratio >= SKEW_RATIO:
                return (
                    ("max_share", max(shares)),
                    ("median_share", middle),
                    ("skew_ratio", ratio),
                    ("skew_threshold", SKEW_RATIO),
                )
        return None
