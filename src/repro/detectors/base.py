"""The deterministic rule-based detector framework.

A detector is an explanation technique whose because clause comes from a
hand-written performance rule (Herodotou-style threshold models) instead
of a learned decision tree.  Each concrete detector contributes
*findings* — candidate because-atoms with a score and the threshold
evidence that justifies them — and this base class turns findings into
the standard :class:`~repro.core.explanation.Explanation` objects every
other technique emits:

1. bind the query's pair of interest and compute its pair-feature vector;
2. ask the subclass for findings (:meth:`RuleBasedDetector.findings`);
3. keep only findings whose atom actually holds on the pair (Definition 3
   requires the because clause to apply to the pair of interest);
4. order them deterministically (score descending, then feature name) and
   keep the top ``width``;
5. score the three quality metrics over the query's training examples and
   attach the merged rule evidence to the metrics.

Everything is deterministic by construction: no unordered iteration
reaches the output, and metric sampling always uses a fresh seeded
generator — the same log and query produce bit-identical explanations,
which the detector test suite asserts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.examples import (
    construct_training_examples,
    find_record,
    records_for_query,
)
from repro.core.explanation import (
    Explanation,
    ExplanationMetrics,
    evaluate_explanation,
)
from repro.core.features import FeatureSchema, infer_schema
from repro.core.pairs import (
    COMPARE_SUFFIX,
    GREATER_THAN,
    LESS_THAN,
    PairFeatureConfig,
    SIMILAR,
    compute_pair_features,
)
from repro.core.pxql.ast import Comparison, Predicate, TRUE_PREDICATE
from repro.core.pxql.query import PXQLQuery
from repro.exceptions import ExplanationError
from repro.logs.records import ExecutionRecord, FeatureValue
from repro.logs.store import ExecutionLog

#: Default because-clause width when the caller does not pass one.
DEFAULT_DETECTOR_WIDTH = 3


@dataclass(frozen=True)
class Finding:
    """One candidate because-atom a rule produced, with its justification.

    :param atom: the pair-feature comparison to put in the because clause.
    :param score: ranking weight (higher = cited earlier); ties break on
        the atom's feature name so ordering never depends on rule order.
    :param evidence: ``(name, value)`` threshold measurements backing the
        finding, merged into the explanation metrics' evidence.
    """

    atom: Comparison
    score: float
    evidence: tuple[tuple[str, float], ...] = ()


class RuleBasedDetector:
    """Shared driver for the deterministic detectors (see module docs).

    Subclasses set ``name``/``technique`` and implement :meth:`findings`;
    ``default_query`` is the canonical unbound PXQL text the CLI ``detect``
    subcommand uses when the user supplies no query.
    """

    #: The registry key; also stamped as ``Explanation.technique``, so a
    #: wire response names exactly the technique that produced it.
    name = "detect-base"
    default_query = ""

    def __init__(self, pair_config: PairFeatureConfig | None = None) -> None:
        self.pair_config = (
            pair_config if pair_config is not None else PairFeatureConfig()
        )

    # ------------------------------------------------------------------ #
    # the Explainer protocol
    # ------------------------------------------------------------------ #

    def explain(
        self,
        log: ExecutionLog,
        query: PXQLQuery,
        schema: FeatureSchema | None = None,
        width: int | None = None,
        examples: list | None = None,
    ) -> Explanation:
        """Run the detector's rules against the query's pair of interest.

        :raises ExplanationError: when the query has no pair, or when no
            rule fires (the pathology this detector knows is not present
            in the pair) — detectors never fabricate an explanation.
        """
        if not query.has_pair:
            raise ExplanationError("the query must be bound to a pair of interest")
        width = width if width is not None else DEFAULT_DETECTOR_WIDTH
        records = records_for_query(log, query)
        schema = schema if schema is not None else infer_schema(records)
        first = find_record(log, query, query.first_id)
        second = find_record(log, query, query.second_id)
        pair_values = compute_pair_features(first, second, schema, self.pair_config)

        findings = self.findings(log, query, schema, first, second, pair_values)
        applicable = _select(findings, pair_values, width)
        if not applicable:
            raise ExplanationError(
                f"{self.name}: no rule fired for this pair — the pathology "
                "this detector recognises is not evident in the log"
            )
        because = Predicate.conjunction([finding.atom for finding in applicable])
        explanation = Explanation(
            because=because, despite=TRUE_PREDICATE, technique=self.name
        )
        if examples is None:
            examples = construct_training_examples(
                log, query, schema, config=self.pair_config, rng=random.Random(0)
            )
        if examples:
            metrics = evaluate_explanation(explanation, examples)
        else:
            metrics = ExplanationMetrics(
                relevance=0.0, precision=0.0, generality=0.0, support=0
            )
        evidence: dict[str, float] = {}
        for finding in applicable:
            evidence.update(finding.evidence)
        return explanation.with_metrics(metrics.with_evidence(evidence))

    # ------------------------------------------------------------------ #
    # the rule interface
    # ------------------------------------------------------------------ #

    def findings(
        self,
        log: ExecutionLog,
        query: PXQLQuery,
        schema: FeatureSchema,
        first: ExecutionRecord,
        second: ExecutionRecord,
        pair_values: Mapping[str, FeatureValue],
    ) -> list[Finding]:
        """Candidate because-atoms for this pair; empty when nothing fires."""
        raise NotImplementedError


def _select(
    findings: Sequence[Finding],
    pair_values: Mapping[str, FeatureValue],
    width: int,
) -> list[Finding]:
    """Applicable findings, deterministically ordered and deduplicated."""
    applicable = [f for f in findings if f.atom.evaluate(pair_values)]
    applicable.sort(key=lambda f: (-f.score, f.atom.feature))
    selected: list[Finding] = []
    seen: set[str] = set()
    for finding in applicable:
        if finding.atom.feature in seen:
            continue
        seen.add(finding.atom.feature)
        selected.append(finding)
        if len(selected) >= width:
            break
    return selected


# --------------------------------------------------------------------- #
# shared rule helpers
# --------------------------------------------------------------------- #


def duration_direction(pair_values: Mapping[str, FeatureValue]) -> str | None:
    """The pair's ``duration_compare`` value (GT/LT/SIM), if computable."""
    value = pair_values.get("duration" + COMPARE_SUFFIX)
    if value in (GREATER_THAN, LESS_THAN, SIMILAR):
        return str(value)
    return None


def invert_direction(direction: str) -> str:
    """GT <-> LT (SIM is its own inverse)."""
    if direction == GREATER_THAN:
        return LESS_THAN
    if direction == LESS_THAN:
        return GREATER_THAN
    return direction


def slower_faster(
    first: ExecutionRecord, second: ExecutionRecord, direction: str
) -> tuple[ExecutionRecord, ExecutionRecord]:
    """(slower, faster) according to the pair's duration direction."""
    if direction == LESS_THAN:
        return second, first
    return first, second


def numeric_feature(record: ExecutionRecord, feature: str) -> float | None:
    """A record's numeric raw-feature value, or ``None``."""
    value = record.features.get(feature)
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    return None


def relative_difference(a: float | None, b: float | None) -> float:
    """``|a - b| / max(|a|, |b|)`` — the default finding score."""
    if a is None or b is None:
        return 0.0
    scale = max(abs(a), abs(b))
    if scale == 0:
        return 0.0
    return abs(a - b) / scale


def median(values: Sequence[float]) -> float | None:
    """The median of a non-empty sequence (``None`` when empty)."""
    if not values:
        return None
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0
