"""Straggler / degraded-node detector.

Hadoop's speculative-execution heuristic, turned into an explanation
rule: an execution *straggles* when its duration exceeds
``STRAGGLER_FACTOR`` × the median duration of its peer group (the tasks
of the same job and type, or the whole job population) — or, pairwise,
``STRAGGLER_FACTOR`` × its twin's duration.  When the gate passes, the
cause is the machine, not the work: the findings are the monitoring
features that separate a contended or degraded node from a healthy one
(load averages, CPU splits, process counts, network rates), each checked
against the direction the duration difference implies — contention
metrics higher on the slower side, idle/free metrics lower.  For task
pairs, running on different machines (``hostname_isSame = F``) is itself
the leading finding.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.features import FeatureSchema
from repro.core.pairs import (
    COMPARE_SUFFIX,
    IS_SAME_SUFFIX,
    NOT_SAME,
    SIMILAR,
)
from repro.core.pxql.ast import Comparison, Operator
from repro.core.pxql.query import EntityKind, PXQLQuery
from repro.core.registry import register_explainer
from repro.detectors.base import (
    Finding,
    RuleBasedDetector,
    duration_direction,
    invert_direction,
    median,
    numeric_feature,
    relative_difference,
    slower_faster,
)
from repro.logs.records import ExecutionRecord, FeatureValue, TaskRecord
from repro.logs.store import ExecutionLog

#: An execution straggles beyond this multiple of its peer median (or of
#: its twin) — Hadoop's classic speculative-execution threshold is 1.5x.
STRAGGLER_FACTOR = 1.5

#: Monitoring features that rise on a contended/degraded machine.
CONTENTION_FEATURES = (
    "avg_cpu_user",
    "avg_cpu_system",
    "avg_cpu_wio",
    "avg_load_one",
    "avg_load_five",
    "avg_load_fifteen",
    "avg_proc_total",
    "avg_proc_run",
    "avg_bytes_in",
    "avg_bytes_out",
    "avg_pkts_in",
    "avg_pkts_out",
)

#: Monitoring features that *fall* on a contended/degraded machine.
IDLE_FEATURES = ("avg_cpu_idle", "avg_mem_free", "avg_mem_cached", "avg_mem_buffers")

#: Task placement features: different machine, different fate.
PLACEMENT_FEATURES = ("hostname", "tracker_name")


@register_explainer("detect-straggler", override=True)
class StragglerDetector(RuleBasedDetector):
    """Explain a slow execution by the state of the machine(s) it ran on."""

    name = "detect-straggler"
    default_query = (
        "FOR JOBS ?, ?\n"
        "DESPITE pig_script_isSame = T\n"
        "OBSERVED duration_compare = GT\n"
        "EXPECTED duration_compare = SIM"
    )

    def findings(
        self,
        log: ExecutionLog,
        query: PXQLQuery,
        schema: FeatureSchema,
        first: ExecutionRecord,
        second: ExecutionRecord,
        pair_values: Mapping[str, FeatureValue],
    ) -> list[Finding]:
        direction = duration_direction(pair_values)
        if direction is None or direction == SIMILAR:
            return []
        slower, faster = slower_faster(first, second, direction)
        gate = self._straggler_gate(log, query, slower, faster)
        if gate is None:
            return []
        findings: list[Finding] = []
        if query.entity is EntityKind.TASK:
            for feature in PLACEMENT_FEATURES:
                if feature not in schema:
                    continue
                if pair_values.get(feature + IS_SAME_SUFFIX) != NOT_SAME:
                    continue
                findings.append(
                    Finding(
                        atom=Comparison(
                            feature + IS_SAME_SUFFIX, Operator.EQ, NOT_SAME
                        ),
                        score=2.0,  # placement dominates the monitoring deltas
                        evidence=gate,
                    )
                )
        for feature, expected in self._directional_features(direction):
            if feature not in schema:
                continue
            if pair_values.get(feature + COMPARE_SUFFIX) != expected:
                continue
            score = relative_difference(
                numeric_feature(first, feature), numeric_feature(second, feature)
            )
            if score == 0.0:
                continue
            findings.append(
                Finding(
                    atom=Comparison(feature + COMPARE_SUFFIX, Operator.EQ, expected),
                    score=score,
                    evidence=gate,
                )
            )
        return findings

    @staticmethod
    def _directional_features(direction: str) -> list[tuple[str, str]]:
        """(feature, expected compare value) under the pair's direction."""
        inverse = invert_direction(direction)
        pairs = [(feature, direction) for feature in CONTENTION_FEATURES]
        pairs += [(feature, inverse) for feature in IDLE_FEATURES]
        return pairs

    def _straggler_gate(
        self,
        log: ExecutionLog,
        query: PXQLQuery,
        slower: ExecutionRecord,
        faster: ExecutionRecord,
    ) -> tuple[tuple[str, float], ...] | None:
        """Threshold evidence when the slower execution truly straggles."""
        if isinstance(slower, TaskRecord):
            peers = [
                task.duration
                for task in log.tasks_of_job(slower.job_id)
                if task.features.get("task_type") == slower.features.get("task_type")
            ]
        else:
            peers = [job.duration for job in log.jobs]
        peer_median = median(peers)
        pair_ratio = slower.duration / faster.duration if faster.duration > 0 else 0.0
        median_ratio = (
            slower.duration / peer_median
            if peer_median is not None and peer_median > 0
            else 0.0
        )
        if max(pair_ratio, median_ratio) < STRAGGLER_FACTOR:
            return None
        evidence = [
            ("pair_ratio", pair_ratio),
            ("slower_duration", slower.duration),
            ("straggler_threshold", STRAGGLER_FACTOR),
        ]
        if peer_median is not None:
            evidence.append(("median_duration", peer_median))
            evidence.append(("median_ratio", median_ratio))
        return tuple(evidence)
